package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stwave/internal/grid"
)

// translatingWindow builds slices containing a sharp blob that moves one
// cell in +x per slice — the ideal MCP workload.
func translatingWindow(d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for t := 0; t < slices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		cx := (d.Nx/4 + t) % d.Nx
		cy, cz := d.Ny/2, d.Nz/2
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					dx := float64(x - cx)
					dy := float64(y - cy)
					dz := float64(z - cz)
					f.Set(x, y, z, 10*math.Exp(-(dx*dx+dy*dy+dz*dz)/4))
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func TestMCPValidation(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	if _, err := CompressMCP(grid.NewWindow(d), DefaultMCPOptions(0.1)); err == nil {
		t.Error("expected error for empty window")
	}
	w := translatingWindow(d, 2)
	if _, err := CompressMCP(w, MCPOptions{ErrorBound: 0, BlockSize: 4, SearchRadius: 2}); err == nil {
		t.Error("expected error for zero bound")
	}
	if _, err := CompressMCP(w, MCPOptions{ErrorBound: 0.1, BlockSize: 1, SearchRadius: 2}); err == nil {
		t.Error("expected error for block size 1")
	}
	if _, err := CompressMCP(w, MCPOptions{ErrorBound: 0.1, BlockSize: 4, SearchRadius: -1}); err == nil {
		t.Error("expected error for negative radius")
	}
}

func TestMCPErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := noisyWindow(rng, grid.Dims{Nx: 9, Ny: 7, Nz: 6}, 5)
	for _, eps := range []float64{0.05, 0.005} {
		c, err := CompressMCP(w, DefaultMCPOptions(eps))
		if err != nil {
			t.Fatal(err)
		}
		recon, err := DecompressMCP(c)
		if err != nil {
			t.Fatal(err)
		}
		for ti := range w.Slices {
			for i := range w.Slices[ti].Data {
				diff := math.Abs(w.Slices[ti].Data[i] - recon.Slices[ti].Data[i])
				if diff > eps*(1+1e-12) {
					t.Fatalf("eps=%g: error %g exceeds bound at slice %d sample %d", eps, diff, ti, i)
				}
			}
		}
	}
}

func TestMotionSearchHelpsOnTranslation(t *testing.T) {
	w := translatingWindow(grid.Dims{Nx: 24, Ny: 16, Nz: 16}, 8)
	still, err := CompressMCP(w, MCPOptions{ErrorBound: 1e-3, BlockSize: 4, SearchRadius: 0})
	if err != nil {
		t.Fatal(err)
	}
	moving, err := CompressMCP(w, MCPOptions{ErrorBound: 1e-3, BlockSize: 4, SearchRadius: 2})
	if err != nil {
		t.Fatal(err)
	}
	if moving.SizeBytes() >= still.SizeBytes() {
		t.Errorf("motion search did not shrink the stream on translating data: %d vs %d bytes",
			moving.SizeBytes(), still.SizeBytes())
	}
}

func TestMCPFindsTheTrueMotionVector(t *testing.T) {
	w := translatingWindow(grid.Dims{Nx: 24, Ny: 16, Nz: 16}, 3)
	c, err := CompressMCP(w, MCPOptions{ErrorBound: 1e-4, BlockSize: 8, SearchRadius: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The blob moves +1 in x per slice; the block containing it should
	// carry motion vector close to (-1, 0, 0) (prediction looks backward).
	foundBackward := false
	for i := 0; i+2 < len(c.Motion); i += 3 {
		if c.Motion[i] == -1 && c.Motion[i+1] == 0 && c.Motion[i+2] == 0 {
			foundBackward = true
			break
		}
	}
	if !foundBackward {
		t.Error("no block discovered the (-1,0,0) motion of the translating blob")
	}
}

func TestMCPRejectsCorrupt(t *testing.T) {
	w := translatingWindow(grid.Dims{Nx: 8, Ny: 8, Nz: 8}, 4)
	c, err := CompressMCP(w, DefaultMCPOptions(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	short := *c
	short.Payload = c.Payload[:len(c.Payload)/3]
	if _, err := DecompressMCP(&short); err == nil {
		t.Error("expected error for truncated payload")
	}
	noMotion := *c
	noMotion.Motion = c.Motion[:2]
	if _, err := DecompressMCP(&noMotion); err == nil {
		t.Error("expected error for truncated motion stream")
	}
	bad := &MCPCompressed{Dims: grid.Dims{}, NumSlices: 1}
	if _, err := DecompressMCP(bad); err == nil {
		t.Error("expected error for invalid header")
	}
}

func TestForEachBlockCoversGridExactlyOnce(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 7, Nz: 5}
	seen := make([]int, d.Len())
	forEachBlock(d, 4, func(bx, by, bz, ex, ey, ez int) {
		for z := bz; z < ez; z++ {
			for y := by; y < ey; y++ {
				for x := bx; x < ex; x++ {
					seen[(z*d.Ny+y)*d.Nx+x]++
				}
			}
		}
	})
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d visited %d times", i, n)
		}
	}
}

func TestClampIdx(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	if clampIdx(d, -1, 0, 0) != 0 {
		t.Error("x underflow not clamped")
	}
	if clampIdx(d, 10, 3, 3) != clampIdx(d, 3, 3, 3) {
		t.Error("x overflow not clamped")
	}
	if clampIdx(d, 2, -5, 9) != clampIdx(d, 2, 0, 3) {
		t.Error("y/z clamp failed")
	}
}

// Property: MCP error bound holds for arbitrary block sizes and radii.
func TestQuickMCPErrorBound(t *testing.T) {
	prop := func(seed int64, bsRaw, radRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := int(bsRaw)%6 + 2
		rad := int(radRaw) % 3
		w := noisyWindow(rng, grid.Dims{Nx: 6, Ny: 5, Nz: 4}, 3)
		eps := 0.01
		c, err := CompressMCP(w, MCPOptions{ErrorBound: eps, BlockSize: bs, SearchRadius: rad})
		if err != nil {
			return false
		}
		recon, err := DecompressMCP(c)
		if err != nil {
			return false
		}
		for ti := range w.Slices {
			for i := range w.Slices[ti].Data {
				if math.Abs(w.Slices[ti].Data[i]-recon.Slices[ti].Data[i]) > eps*(1+1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

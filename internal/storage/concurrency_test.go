package storage

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"stwave/internal/core"
	"stwave/internal/grid"
)

// buildTestContainer writes numWindows windows (windowSize slices each,
// with a distinct mean per window so misdirected reads are detectable) and
// returns the container path.
func buildTestContainer(t testing.TB, numWindows, windowSize int, d grid.Dims) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conc.stw")
	opts := core.DefaultOptions()
	opts.WindowSize = windowSize
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	for wi := 0; wi < numWindows; wi++ {
		win := grid.NewWindow(d)
		for ts := 0; ts < windowSize; ts++ {
			f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
			for i := range f.Data {
				f.Data[i] = float64(wi*100) + math.Sin(float64(i)*0.1+float64(ts)*0.2)
			}
			if err := win.Append(f, float64(wi*windowSize+ts)); err != nil {
				t.Fatal(err)
			}
		}
		cw, err := comp.CompressWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadWindowConcurrent asserts that one ContainerReader can serve many
// goroutines at once — the contract the HTTP server relies on when sharing
// a reader across requests. Run with -race (make check does).
func TestReadWindowConcurrent(t *testing.T) {
	const numWindows, windowSize = 4, 3
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	path := buildTestContainer(t, numWindows, windowSize, d)

	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Sequential ground truth, one decompressed mean per window.
	wantMean := make([]float64, numWindows)
	for wi := 0; wi < numWindows; wi++ {
		cw, err := r.ReadWindow(wi)
		if err != nil {
			t.Fatal(err)
		}
		win, err := core.Decompress(cw)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range win.Slices[0].Data {
			sum += v
		}
		wantMean[wi] = sum / float64(len(win.Slices[0].Data))
	}

	const goroutines = 16
	const reads = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*reads)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				wi := (g + i) % numWindows
				cw, err := r.ReadWindow(wi)
				if err != nil {
					errs <- err
					return
				}
				if cw.NumSlices() != windowSize {
					errs <- fmt.Errorf("window %d: %d slices, want %d", wi, cw.NumSlices(), windowSize)
					return
				}
				win, err := core.Decompress(cw)
				if err != nil {
					errs <- err
					return
				}
				sum := 0.0
				for _, v := range win.Slices[0].Data {
					sum += v
				}
				if mean := sum / float64(len(win.Slices[0].Data)); math.Abs(mean-wantMean[wi]) > 1e-9 {
					errs <- fmt.Errorf("window %d: concurrent mean %g != sequential %g", wi, mean, wantMean[wi])
					return
				}
				// Interleave header-only reads with full reads.
				info, err := r.WindowInfo(wi)
				if err != nil {
					errs <- err
					return
				}
				if info.Dims != d || info.NumSlices != windowSize {
					errs <- fmt.Errorf("window %d info = %+v", wi, info)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBurstBufferConcurrent races Put, Get, Drop, and Len from many
// goroutines — the in-situ pattern where simulation ranks stage slices
// while the compressor drains them. Run with -race (make check does).
func TestBurstBufferConcurrent(t *testing.T) {
	d := grid.Dims{Nx: 6, Ny: 5, Nz: 4}
	b, err := NewBurstBuffer(t.TempDir(), DefaultModel(), d)
	if err != nil {
		t.Fatal(err)
	}

	const producers = 8
	const slicesEach = 6
	ids := make(chan int, producers*slicesEach)
	var wg sync.WaitGroup
	errs := make(chan error, producers*slicesEach*2)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for s := 0; s < slicesEach; s++ {
				f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
				for i := range f.Data {
					f.Data[i] = float64(p)
				}
				id, err := b.PutSlice(f)
				if err != nil {
					errs <- err
					return
				}
				b.Len() // racing reads of the live map
				ids <- id
			}
		}(p)
	}

	// Consumers drain concurrently with the producers: read each slice
	// back, check it is internally consistent, then drop it.
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for id := range ids {
				f, err := b.GetSlice(id)
				if err != nil {
					errs <- fmt.Errorf("get %d: %w", id, err)
					continue
				}
				for i := range f.Data {
					if f.Data[i] != f.Data[0] {
						errs <- fmt.Errorf("slice %d not uniform: %g vs %g", id, f.Data[i], f.Data[0])
						break
					}
				}
				if err := b.Drop(id); err != nil {
					errs <- fmt.Errorf("drop %d: %w", id, err)
				}
			}
		}()
	}

	wg.Wait()
	close(ids)
	cg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if b.Len() != 0 {
		t.Errorf("%d slices left after drain", b.Len())
	}
	if got, want := b.Model().BytesWritten(Buffer), int64(producers*slicesEach)*grid.NewField3D(d.Nx, d.Ny, d.Nz).RawSizeBytes(4); got != want {
		t.Errorf("model recorded %d bytes written, want %d", got, want)
	}
}

func TestWindowInfoMatchesFullRead(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 8, Nz: 12}
	path := buildTestContainer(t, 2, 4, d)
	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for wi := 0; wi < r.NumWindows(); wi++ {
		info, err := r.WindowInfo(wi)
		if err != nil {
			t.Fatal(err)
		}
		cw, err := r.ReadWindow(wi)
		if err != nil {
			t.Fatal(err)
		}
		if info.Dims != cw.Dims || info.NumSlices != cw.NumSlices() {
			t.Errorf("window %d: info %+v vs full %v/%d", wi, info, cw.Dims, cw.NumSlices())
		}
		if info.Mode != cw.Opts.Mode || info.SpatialKernel != cw.Opts.SpatialKernel {
			t.Errorf("window %d: info mode/kernel %v/%v vs %v/%v",
				wi, info.Mode, info.SpatialKernel, cw.Opts.Mode, cw.Opts.SpatialKernel)
		}
		if want := int64(d.Len()) * int64(cw.NumSlices()) * 8; info.RawSizeBytes() != want {
			t.Errorf("window %d: RawSizeBytes %d, want %d", wi, info.RawSizeBytes(), want)
		}
	}
	if _, err := r.WindowInfo(-1); err == nil {
		t.Error("out-of-range WindowInfo must fail")
	}
	if _, err := r.WindowInfo(99); err == nil {
		t.Error("out-of-range WindowInfo must fail")
	}
}

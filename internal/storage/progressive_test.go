package storage

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"stwave/internal/core"
	"stwave/internal/grid"
)

// progressiveContainer writes one progressive and one legacy window to a
// fresh container and opens it for reading.
func progressiveContainer(t *testing.T, d grid.Dims, slices int) *ContainerReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.stw")
	opts := core.DefaultOptions()
	opts.WindowSize = slices
	opts.Ratio = 8
	opts.Progressive = true
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	pcw, err := comp.CompressWindow(testWindow(d, slices))
	if err != nil {
		t.Fatal(err)
	}
	lopts := opts
	lopts.Progressive = false
	lcomp, err := core.New(lopts)
	if err != nil {
		t.Fatal(err)
	}
	lcw, err := lcomp.CompressWindow(testWindow(d, slices))
	if err != nil {
		t.Fatal(err)
	}
	w, err := CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(pcw); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(lcw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestReadWindowLevels: a partial container read must decode identically
// to an in-memory partial decode of the fully-read window, while reading
// strictly fewer bytes for coarse levels.
func TestReadWindowLevels(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	r := progressiveContainer(t, d, 6)

	full, err := r.ReadWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	total, err := r.WindowSizeBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= full.SpatialLevels; k++ {
		cw, bytesRead, err := r.ReadWindowLevels(0, k)
		if err != nil {
			t.Fatalf("level %d: %v", k, err)
		}
		if k < full.SpatialLevels && bytesRead >= total {
			t.Errorf("level %d read %d of %d bytes — no partial-read saving", k, bytesRead, total)
		}
		want, err := core.DecompressLevels(full, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.DecompressLevels(cw, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Slices) != len(want.Slices) {
			t.Fatalf("level %d: %d slices, want %d", k, len(got.Slices), len(want.Slices))
		}
		for i := range got.Slices {
			for j, v := range got.Slices[i].Data {
				if math.Float64bits(v) != math.Float64bits(want.Slices[i].Data[j]) {
					t.Fatalf("level %d slice %d sample %d: partial container read differs from in-memory partial decode", k, i, j)
				}
			}
		}
	}
	// Level 0 must be a large saving, not a token one: the approximation
	// cube is 1/8^levels of the grid.
	_, preview, err := r.ReadWindowLevels(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if preview*2 >= total {
		t.Errorf("level-0 preview read %d of %d bytes — expected well under half", preview, total)
	}
}

// TestReadWindowLevelsLegacyFallback: legacy windows fail typed so
// callers can fall back to ReadWindow.
func TestReadWindowLevelsLegacyFallback(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	r := progressiveContainer(t, d, 4)
	if _, _, err := r.ReadWindowLevels(1, 0); !errors.Is(err, core.ErrNotProgressive) {
		t.Fatalf("legacy window: got %v, want ErrNotProgressive", err)
	}
	if _, _, _, err := r.WindowLevelTable(1); !errors.Is(err, core.ErrNotProgressive) {
		t.Fatalf("legacy window table: got %v, want ErrNotProgressive", err)
	}
	if _, _, err := r.ReadWindowLevels(0, 99); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if _, _, err := r.ReadWindowLevels(-1, 0); err == nil {
		t.Fatal("out-of-range window accepted")
	}
}

// TestWindowLevelTableAccounting: the table must map levels to byte
// ranges that exactly tile the payload, and WindowSection must expose
// the same byte count the index records.
func TestWindowLevelTableAccounting(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	r := progressiveContainer(t, d, 5)
	wi, table, payloadStart, err := r.WindowLevelTable(0)
	if err != nil {
		t.Fatal(err)
	}
	if !wi.Progressive || wi.SpatialLevels < 1 {
		t.Fatalf("window info %+v not progressive", wi)
	}
	if len(table.Extents) != wi.SpatialLevels+1 {
		t.Fatalf("%d extents for %d levels", len(table.Extents), wi.SpatialLevels)
	}
	total, err := r.WindowSizeBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := payloadStart + table.PrefixBytes(len(table.Extents)-1); got != total {
		t.Fatalf("level ranges cover %d bytes, window is %d", got, total)
	}
	sec, err := r.WindowSection(0)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Size() != total {
		t.Fatalf("section size %d, index length %d", sec.Size(), total)
	}
	// The section's bytes must re-parse as the same window.
	cw, err := core.ReadCompressedWindow(sec)
	if err != nil {
		t.Fatalf("re-parsing window section: %v", err)
	}
	if !cw.Progressive() || cw.SpatialLevels != wi.SpatialLevels {
		t.Fatal("window section did not round-trip the progressive window")
	}
}

// TestScanReportsProgressive: the fsck scan labels progressive frames so
// reports distinguish windows that can serve a coarse prefix.
func TestScanReportsProgressive(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	path := filepath.Join(t.TempDir(), "scan.stw")
	opts := core.DefaultOptions()
	opts.WindowSize = 4
	opts.Progressive = true
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(testWindow(d, 4))
	if err != nil {
		t.Fatal(err)
	}
	w, err := CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(cw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ScanContainer(f, st.Size())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frames) != 1 {
		t.Fatalf("%d frames", len(rep.Frames))
	}
	fr := rep.Frames[0]
	if !fr.Progressive || fr.Levels != cw.SpatialLevels {
		t.Fatalf("frame %+v does not report progressive layout (want levels %d)", fr, cw.SpatialLevels)
	}
}

package storage

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"stwave/internal/core"
	"stwave/internal/faultio"
	"stwave/internal/grid"
)

func compressTestWindow(t *testing.T, d grid.Dims, slices int) *core.CompressedWindow {
	t.Helper()
	opts := core.DefaultOptions()
	opts.WindowSize = slices
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(testWindow(d, slices))
	if err != nil {
		t.Fatal(err)
	}
	return cw
}

// TestContainerGapEntries: a gap marker is a first-class container entry —
// indexed, checksummed, visible to WindowInfo, and cleanly distinguished
// from both real windows and corruption on every read path.
func TestContainerGapEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gaps.stw")
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	cw := compressTestWindow(t, d, 5)
	g := core.GapMarker{Slices: 5, T0: 5, T1: 9, Reason: core.GapShed}

	w, err := CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	if i, err := w.Append(cw); err != nil || i != 0 {
		t.Fatalf("Append: %d, %v", i, err)
	}
	if i, err := w.AppendGap(g); err != nil || i != 1 {
		t.Fatalf("AppendGap: %d, %v", i, err)
	}
	if i, err := w.Append(cw); err != nil || i != 2 {
		t.Fatalf("Append: %d, %v", i, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumWindows() != 3 {
		t.Fatalf("NumWindows = %d, want 3", r.NumWindows())
	}
	// WindowInfo routes gaps without a second read.
	wi, err := r.WindowInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	if wi.Gap == nil || *wi.Gap != g {
		t.Fatalf("WindowInfo(1).Gap = %+v, want %+v", wi.Gap, g)
	}
	if wi.NumSlices != g.Slices {
		t.Fatalf("gap NumSlices = %d, want %d", wi.NumSlices, g.Slices)
	}
	// ReadWindow refuses gaps with the typed error, and the refusal is
	// not misfiled as corruption.
	if _, err := r.ReadWindow(1); !errors.Is(err, core.ErrGapWindow) {
		t.Fatalf("ReadWindow(1) = %v, want ErrGapWindow", err)
	}
	if err := r.WindowErr(1); err != nil {
		t.Fatalf("gap recorded as corrupt: %v", err)
	}
	got, err := r.GapMarker(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("GapMarker(1) = %+v, want %+v", got, g)
	}
	// A real window is not a gap, and stays readable around the gap.
	if _, err := r.GapMarker(0); !errors.Is(err, core.ErrNotGap) {
		t.Fatalf("GapMarker(0) = %v, want ErrNotGap", err)
	}
	for _, i := range []int{0, 2} {
		if _, err := r.ReadWindow(i); err != nil {
			t.Fatalf("ReadWindow(%d): %v", i, err)
		}
	}
}

// TestGapSurvivesCrashRecovery: a crash after appending windows and gaps
// but before the footer leaves a journal that recovery rebuilds with the
// gap intact — the timeline accounting survives the loss of the index.
func TestGapSurvivesCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.stw")
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	cw := compressTestWindow(t, d, 5)
	g := core.GapMarker{Slices: 5, T0: 5, T1: 9, Reason: core.GapWriteFailed}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewContainerWriter(f)
	if _, err := w.Append(cw); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendGap(g); err != nil {
		t.Fatal(err)
	}
	// Crash: the file is closed without Close(), so no footer exists.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := RecoverContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Good != 2 || len(rep.Corrupt) != 0 {
		t.Fatalf("recovered %d good, %v corrupt; want 2 good", rep.Good, rep.Corrupt)
	}
	if rep.Frames[1].Codec != "gap" {
		t.Fatalf("frame 1 codec = %q, want \"gap\" (fsck must name gap entries)", rep.Frames[1].Codec)
	}
	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.GapMarker(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("recovered gap = %+v, want %+v", got, g)
	}
}

// TestClearErrorReArmsWriter drives the policy-retry contract: an ENOSPC
// append sticky-fails the writer, ClearError re-arms it once the journal
// tail is proven trimmed, and the retried append lands — with the durable
// prefix never perturbed.
func TestClearErrorReArmsWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "enospc.stw")
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	cw := compressTestWindow(t, d, 5)

	osf, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ff := faultio.Wrap(osf)
	w := NewContainerWriter(ff)
	w.Sync = SyncPerWindow

	if _, err := w.Append(cw); err != nil {
		t.Fatal(err)
	}
	// Arm a full disk: the next record does not fit.
	ff.SetFreeSpace(10)
	if _, err := w.Append(cw); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk = %v, want ENOSPC", err)
	}
	// Sticky until cleared.
	if _, err := w.Append(cw); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append after failure = %v, want sticky ENOSPC", err)
	}
	if err := w.ClearError(); err != nil {
		t.Fatalf("ClearError: %v", err)
	}
	// Space freed (the stall policy's wait, compressed into one call).
	ff.AddFreeSpace(1 << 20)
	if i, err := w.Append(cw); err != nil || i != 1 {
		t.Fatalf("append after re-arm: %d, %v", i, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumWindows() != 2 {
		t.Fatalf("NumWindows = %d, want 2", r.NumWindows())
	}
	for i := 0; i < 2; i++ {
		if err := r.VerifyWindow(i); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
}

// TestBurstBufferPutSliceFailureLeavesNoOrphan: a PutSlice that fails
// after the file write must remove the file — nothing in live, nothing on
// disk.
func TestBurstBufferPutSliceFailureLeavesNoOrphan(t *testing.T) {
	dir := t.TempDir()
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	// A model with no Buffer tier makes the accounting step fail after
	// the slice file has been written.
	model := NewModel(map[Tier]TierSpec{Permanent: {WriteBandwidth: 1e9, ReadBandwidth: 1e9}})
	b, err := NewBurstBuffer(dir, model, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PutSlice(grid.NewField3D(4, 4, 4)); err == nil {
		t.Fatal("PutSlice with unconfigured tier must fail")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after failed put", b.Len())
	}
	left, err := filepath.Glob(filepath.Join(dir, "slice-*.raw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("failed PutSlice left files behind: %v", left)
	}
}

// TestBurstBufferOrphanGC: slice files from a crashed prior run are
// removed on construction; unrelated files are untouched.
func TestBurstBufferOrphanGC(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "slice-000007.raw")
	keeper := filepath.Join(dir, "notes.txt")
	for _, p := range []string{orphan, keeper} {
		if err := os.WriteFile(p, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	b, err := NewBurstBuffer(dir, DefaultModel(), d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned slice file survived construction: %v", err)
	}
	if _, err := os.Stat(keeper); err != nil {
		t.Fatalf("unrelated file removed: %v", err)
	}
	// The fresh buffer numbers slices from zero and works normally.
	id, err := b.PutSlice(grid.NewField3D(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.GetSlice(id); err != nil {
		t.Fatal(err)
	}
	if err := b.Drop(id); err != nil {
		t.Fatal(err)
	}
}

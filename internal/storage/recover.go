package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"stwave/internal/core"
)

// Recovery: a v3 container's data region is a journal of self-delimiting
// record frames, so the index can always be rebuilt by scanning frames
// from offset zero — the footer is an optimization, not the source of
// truth. ScanContainer walks the journal; RecoverContainer repairs a
// truncated or footer-less file in place by truncating the torn tail and
// writing a fresh index over exactly the frames that are fully on disk.

// FrameState classifies one scanned record frame.
type FrameState int

const (
	// FrameOK: frame fully on disk, payload checksum verified.
	FrameOK FrameState = iota
	// FrameCorrupt: frame fully on disk but the payload fails its
	// checksum — kept through repair so readers see the loss explicitly.
	FrameCorrupt
	// FrameTorn: frame header valid but the payload runs past the end of
	// the file; the record was being written when the crash hit.
	FrameTorn
)

// String names the state for reports.
func (s FrameState) String() string {
	switch s {
	case FrameOK:
		return "ok"
	case FrameCorrupt:
		return "corrupt"
	case FrameTorn:
		return "torn"
	}
	return fmt.Sprintf("FrameState(%d)", int(s))
}

// FrameInfo describes one record frame found by a scan.
type FrameInfo struct {
	Index  int        `json:"index"`
	Offset int64      `json:"offset"` // payload offset (frame header precedes it)
	Length int64      `json:"length"` // payload bytes
	CRC    uint32     `json:"crc"`
	State  FrameState `json:"-"`
	StateS string     `json:"state"`
}

// ScanReport is the result of walking a container's journal.
type ScanReport struct {
	Size    int64       `json:"size_bytes"`
	Legacy  bool        `json:"legacy"` // v2 container: no frames, index verified instead
	Frames  []FrameInfo `json:"frames"`
	Good    int         `json:"good_windows"`
	Corrupt []int       `json:"corrupt_windows"` // indices of FrameCorrupt frames
	Torn    bool        `json:"torn_record"`     // a record was cut off mid-write
	// TailOffset is the end of the last fully-on-disk frame: everything
	// after it is the footer index, a torn record, or garbage.
	TailOffset int64 `json:"tail_offset"`
	// FooterOK reports whether [TailOffset, Size) is a valid index +
	// footer consistent with the scanned frames.
	FooterOK bool `json:"footer_ok"`
	// FooterPresent and FooterWindows describe whatever footer magic the
	// file ends with, even when it disagrees with the journal.
	FooterPresent bool `json:"footer_present"`
	FooterWindows int  `json:"footer_windows"`
}

// NeedsRepair reports whether RecoverContainer would change the file.
func (rep *ScanReport) NeedsRepair() bool { return !rep.Legacy && !rep.FooterOK }

// ScanContainer walks the record journal of a container image, verifying
// every frame's checksums, and cross-checks the footer index if one is
// present. It never modifies the file. Legacy (v2) containers have no
// journal; for those the scan falls back to verifying each window
// against the footer index, and recovery is not possible.
func ScanContainer(f io.ReaderAt, size int64) (*ScanReport, error) {
	rep := &ScanReport{Size: size}
	pos := int64(0)
	for pos+core.RecordHeaderSize <= size {
		var hdr [core.RecordHeaderSize]byte
		if _, err := f.ReadAt(hdr[:], pos); err != nil {
			return nil, fmt.Errorf("storage: scan read at %d: %w", pos, err)
		}
		h, err := core.ParseRecordHeader(hdr[:])
		if err != nil {
			break // end of journal: footer, torn header, or garbage
		}
		fi := FrameInfo{
			Index:  len(rep.Frames),
			Offset: pos + core.RecordHeaderSize,
			Length: h.Length,
			CRC:    h.PayloadCRC,
		}
		if h.Length > size-fi.Offset {
			fi.State = FrameTorn
			rep.Torn = true
			rep.Frames = append(rep.Frames, withStateS(fi))
			break // nothing durable past a torn record
		}
		if crcOfSection(f, fi.Offset, fi.Length) == h.PayloadCRC {
			fi.State = FrameOK
			rep.Good++
		} else {
			fi.State = FrameCorrupt
			rep.Corrupt = append(rep.Corrupt, fi.Index)
		}
		rep.Frames = append(rep.Frames, withStateS(fi))
		pos = fi.Offset + fi.Length
	}
	rep.TailOffset = pos

	if len(durableFrames(rep)) == 0 && pos == 0 {
		// No frames at all: either a legacy container or not a container.
		if legacyRep, ok := scanLegacy(f, size); ok {
			return legacyRep, nil
		}
	}
	rep.FooterOK = footerMatches(f, size, rep)
	if n, ok := footerWindows(f, size); ok {
		rep.FooterPresent = true
		rep.FooterWindows = int(min(n, 1<<31))
	}
	return rep, nil
}

func withStateS(fi FrameInfo) FrameInfo {
	fi.StateS = fi.State.String()
	return fi
}

// durableFrames returns the frames fully on disk (ok or corrupt).
func durableFrames(rep *ScanReport) []FrameInfo {
	out := rep.Frames
	if n := len(out); n > 0 && out[n-1].State == FrameTorn {
		out = out[:n-1]
	}
	return out
}

// crcOfSection checksums length bytes at offset without holding them all
// in memory.
func crcOfSection(f io.ReaderAt, offset, length int64) uint32 {
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, io.NewSectionReader(f, offset, length)); err != nil {
		return 0xFFFFFFFF // poisoned: will mismatch any stored CRC
	}
	return h.Sum32()
}

// footerMatches reports whether the bytes after the last durable frame
// are exactly a valid v3 index + footer describing the scanned frames.
func footerMatches(f io.ReaderAt, size int64, rep *ScanReport) bool {
	if rep.Torn {
		return false
	}
	frames := durableFrames(rep)
	want := encodeIndexFromFrames(frames)
	if size-rep.TailOffset != int64(len(want)) {
		return false
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, rep.TailOffset); err != nil {
		return false
	}
	return bytes.Equal(got, want)
}

// encodeIndexFromFrames builds the index + footer bytes for the given
// durable frames.
func encodeIndexFromFrames(frames []FrameInfo) []byte {
	offsets := make([]int64, len(frames))
	lengths := make([]int64, len(frames))
	crcs := make([]uint32, len(frames))
	for i, fr := range frames {
		offsets[i] = fr.Offset
		lengths[i] = fr.Length
		crcs[i] = fr.CRC
	}
	return encodeIndex(offsets, lengths, crcs)
}

// scanLegacy recognizes a v2 container (valid "STWX" footer, no frames)
// and verifies its windows against the index.
func scanLegacy(f io.ReaderAt, size int64) (*ScanReport, bool) {
	r, err := NewContainerReader(readerAtNopCloser{f}, size)
	if err != nil || r.framed {
		return nil, false
	}
	rep := &ScanReport{Size: size, Legacy: true, FooterOK: true, FooterPresent: true, FooterWindows: r.NumWindows()}
	for i := 0; i < r.NumWindows(); i++ {
		fi := FrameInfo{Index: i, Offset: r.offsets[i], Length: r.lengths[i], CRC: r.crcs[i]}
		if crcOfSection(f, fi.Offset, fi.Length) == fi.CRC {
			fi.State = FrameOK
			rep.Good++
		} else {
			fi.State = FrameCorrupt
			rep.Corrupt = append(rep.Corrupt, i)
		}
		rep.Frames = append(rep.Frames, withStateS(fi))
		rep.TailOffset = fi.Offset + fi.Length
	}
	return rep, true
}

type readerAtNopCloser struct{ io.ReaderAt }

func (readerAtNopCloser) Close() error { return nil }

// RecoverContainer scans the container at path and, if its footer index
// is missing, torn, or inconsistent with the journal, repairs the file
// in place: the torn tail is truncated away and a fresh index + footer
// is written over exactly the frames that are fully on disk (corrupt
// frames are kept and indexed, so their loss stays visible to readers
// and fsck rather than silently renumbering later windows). The repair
// is idempotent — re-running it, even after a crash mid-repair, reaches
// the same result. The returned report describes the state found by the
// pre-repair scan.
func RecoverContainer(path string) (*ScanReport, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	rep, err := ScanContainer(f, st.Size())
	if err != nil {
		return nil, err
	}
	if rep.Legacy {
		return rep, fmt.Errorf("storage: %s is a legacy (v2) container with no journal frames; nothing to recover", path)
	}
	if rep.FooterOK {
		return rep, nil
	}
	if len(durableFrames(rep)) == 0 {
		return rep, fmt.Errorf("storage: %s contains no intact record frames; not a recoverable container", path)
	}
	if err := f.Truncate(rep.TailOffset); err != nil {
		return rep, fmt.Errorf("storage: truncating torn tail: %w", err)
	}
	idx := encodeIndexFromFrames(durableFrames(rep))
	if _, err := f.WriteAt(idx, rep.TailOffset); err != nil {
		return rep, fmt.Errorf("storage: rewriting index: %w", err)
	}
	if err := f.Sync(); err != nil {
		return rep, fmt.Errorf("storage: syncing repaired container: %w", err)
	}
	return rep, nil
}

// footerWindows reads the window count a footer claims, for reports; ok
// is false when no valid footer magic is present.
func footerWindows(f io.ReaderAt, size int64) (n uint64, ok bool) {
	if size < footerSize {
		return 0, false
	}
	var tail [footerSize]byte
	if _, err := f.ReadAt(tail[:], size-footerSize); err != nil {
		return 0, false
	}
	switch [4]byte(tail[8:12]) {
	case containerMagic, containerMagicV2:
		return binary.LittleEndian.Uint64(tail[0:8]), true
	}
	return 0, false
}

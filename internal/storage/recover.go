package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"stwave/internal/core"
)

// Recovery: a v3 container's data region is a journal of self-delimiting
// record frames, so the index can always be rebuilt by scanning frames
// from offset zero — the footer is an optimization, not the source of
// truth. ScanContainer walks the journal; RecoverContainer repairs a
// truncated or footer-less file in place by truncating the torn tail and
// writing a fresh index over exactly the frames that are fully on disk.
//
// The journal and the footer check each other. A scan that stops early
// on a corrupt frame header (a single flipped bit, a failure mode the
// fault matrix models explicitly) does not get to declare everything
// after it lost: if the file still ends in a footer whose entries agree
// with every frame the scan verified and whose payloads check out, the
// scan resyncs from the footer and repair rewrites the damaged headers
// in place instead of truncating readable windows away.

// FrameState classifies one scanned record frame.
type FrameState int

const (
	// FrameOK: frame fully on disk, payload checksum verified.
	FrameOK FrameState = iota
	// FrameCorrupt: frame fully on disk but the payload fails its
	// checksum — kept through repair so readers see the loss explicitly.
	FrameCorrupt
	// FrameTorn: frame header valid but the payload runs past the end of
	// the file; the record was being written when the crash hit.
	FrameTorn
	// FrameBadHeader: the frame's record header is corrupt but the
	// footer index located the payload and it verifies against the
	// footer's CRC — the window is fully readable through the index, and
	// repair rewrites the header in place.
	FrameBadHeader
)

// String names the state for reports.
func (s FrameState) String() string {
	switch s {
	case FrameOK:
		return "ok"
	case FrameCorrupt:
		return "corrupt"
	case FrameTorn:
		return "torn"
	case FrameBadHeader:
		return "bad-header"
	}
	return fmt.Sprintf("FrameState(%d)", int(s))
}

// FrameInfo describes one record frame found by a scan.
type FrameInfo struct {
	Index  int        `json:"index"`
	Offset int64      `json:"offset"` // payload offset (frame header precedes it)
	Length int64      `json:"length"` // payload bytes
	CRC    uint32     `json:"crc"`
	State  FrameState `json:"-"`
	StateS string     `json:"state"`
	// Codec names the coefficient backend of the window payload ("sparse",
	// "entropy", ...), parsed from the window header. Empty when the
	// payload is too damaged for even the header to parse.
	Codec string `json:"codec,omitempty"`
	// Precision names the window's sample precision ("f64" or "f32"),
	// parsed from the same header bit the decoder dispatches on. Empty for
	// gap markers and unparseable payloads.
	Precision string `json:"precision,omitempty"`
	// Progressive marks a v4 level-major payload; Levels is its spatial
	// decomposition depth (the number of addressable refinement levels).
	// An fsck report distinguishes them because a corrupt progressive
	// window may still serve its intact coarse prefix.
	Progressive bool `json:"progressive,omitempty"`
	Levels      int  `json:"levels,omitempty"`
}

// ScanReport is the result of walking a container's journal.
type ScanReport struct {
	Size    int64       `json:"size_bytes"`
	Legacy  bool        `json:"legacy"` // v2 container: no frames, index verified instead
	Frames  []FrameInfo `json:"frames"`
	Good    int         `json:"good_windows"`
	Corrupt []int       `json:"corrupt_windows"` // indices of FrameCorrupt frames
	Torn    bool        `json:"torn_record"`     // a record was cut off mid-write
	// BadHeaders lists frames whose record header is corrupt but whose
	// payload the footer index still reaches; repair rewrites these
	// headers in place without touching any payload.
	BadHeaders []int `json:"bad_headers,omitempty"`
	// TailOffset is the end of the last fully-on-disk frame: everything
	// after it is the footer index, a torn record, or garbage.
	TailOffset int64 `json:"tail_offset"`
	// FooterOK reports whether [TailOffset, Size) is a valid index +
	// footer consistent with the scanned frames.
	FooterOK bool `json:"footer_ok"`
	// FooterPresent and FooterWindows describe whatever footer magic the
	// file ends with, even when it disagrees with the journal.
	FooterPresent bool `json:"footer_present"`
	FooterWindows int  `json:"footer_windows"`
}

// NeedsRepair reports whether RecoverContainer would change the file.
func (rep *ScanReport) NeedsRepair() bool {
	return !rep.Legacy && (!rep.FooterOK || len(rep.BadHeaders) > 0)
}

// ScanContainer walks the record journal of a container image, verifying
// every frame's checksums, and cross-checks the footer index if one is
// present. It never modifies the file. Transient read errors are retried
// with the default policy (the scan sees the same flaky production I/O
// as the read and write paths); persistent read errors propagate instead
// of misclassifying an unreadable frame as corrupt. Legacy (v2)
// containers have no journal; for those the scan falls back to verifying
// each window against the footer index, and recovery is not possible.
func ScanContainer(f io.ReaderAt, size int64) (*ScanReport, error) {
	retry := DefaultRetryPolicy()
	rep := &ScanReport{Size: size}
	pos := int64(0)
	for pos+core.RecordHeaderSize <= size {
		var hdr [core.RecordHeaderSize]byte
		if err := readAtRetry(f, retry, hdr[:], pos); err != nil {
			return nil, fmt.Errorf("storage: scan read at %d: %w", pos, err)
		}
		h, err := core.ParseRecordHeader(hdr[:])
		if err != nil {
			break // end of journal: footer, corrupt header, or garbage
		}
		fi := FrameInfo{
			Index:  len(rep.Frames),
			Offset: pos + core.RecordHeaderSize,
			Length: h.Length,
			CRC:    h.PayloadCRC,
		}
		if h.Length > size-fi.Offset {
			fi.State = FrameTorn
			rep.Torn = true
			rep.Frames = append(rep.Frames, withStateS(fi))
			break // nothing durable past a torn record
		}
		sum, err := crcOfSection(f, retry, fi.Offset, fi.Length)
		if err != nil {
			return nil, fmt.Errorf("storage: scan read window %d: %w", fi.Index, err)
		}
		if sum == h.PayloadCRC {
			fi.State = FrameOK
			rep.Good++
		} else {
			fi.State = FrameCorrupt
			rep.Corrupt = append(rep.Corrupt, fi.Index)
		}
		rep.Frames = append(rep.Frames, withStateS(classifyCodec(f, fi)))
		pos = fi.Offset + fi.Length
	}
	rep.TailOffset = pos

	if len(durableFrames(rep)) == 0 && pos == 0 {
		// No frames at all: either a legacy container or not a container.
		legacyRep, ok, err := scanLegacy(f, size, retry)
		if err != nil {
			return nil, err
		}
		if ok {
			return legacyRep, nil
		}
	}
	rep.FooterOK = footerMatches(f, size, rep)
	if !rep.FooterOK && !rep.Torn {
		if err := resyncFromFooter(f, size, retry, rep); err != nil {
			return nil, err
		}
	}
	if n, ok := footerWindows(f, size); ok {
		rep.FooterPresent = true
		rep.FooterWindows = int(min(n, 1<<31))
	}
	return rep, nil
}

func withStateS(fi FrameInfo) FrameInfo {
	fi.StateS = fi.State.String()
	return fi
}

// classifyCodec parses the window header at the frame's payload to name
// its coefficient backend. Damage is expected here — a corrupt payload's
// header may be garbage — so parse failures just leave Codec empty.
// Journaled gap markers are labeled "gap" so an fsck report reads as a
// timeline, not as a run of mystery frames.
func classifyCodec(f io.ReaderAt, fi FrameInfo) FrameInfo {
	wi, err := core.ReadWindowInfo(io.NewSectionReader(f, fi.Offset, fi.Length))
	if err != nil {
		return fi
	}
	if wi.Gap != nil {
		fi.Codec = "gap"
	} else {
		fi.Codec = wi.Codec.String()
		fi.Precision = wi.Precision.String()
		fi.Progressive = wi.Progressive
		if wi.Progressive {
			fi.Levels = wi.SpatialLevels
		}
	}
	return fi
}

// durableFrames returns the frames fully on disk (ok or corrupt).
func durableFrames(rep *ScanReport) []FrameInfo {
	out := rep.Frames
	if n := len(out); n > 0 && out[n-1].State == FrameTorn {
		out = out[:n-1]
	}
	return out
}

// readAtRetry fills buf from off, retrying transient errors.
func readAtRetry(f io.ReaderAt, retry RetryPolicy, buf []byte, off int64) error {
	return retry.Do(func() error {
		_, err := f.ReadAt(buf, off)
		return err
	})
}

// crcOfSection checksums length bytes at offset without holding them all
// in memory. Transient read errors retry the whole section (the checksum
// must restart); a persistent error propagates so an unreadable window
// is reported as a read failure rather than misclassified as corrupt.
func crcOfSection(f io.ReaderAt, retry RetryPolicy, offset, length int64) (uint32, error) {
	var sum uint32
	err := retry.Do(func() error {
		h := crc32.NewIEEE()
		if _, err := io.Copy(h, io.NewSectionReader(f, offset, length)); err != nil {
			return err
		}
		sum = h.Sum32()
		return nil
	})
	return sum, err
}

// footerMatches reports whether the bytes after the last durable frame
// are exactly a valid v3 index + footer describing the scanned frames.
func footerMatches(f io.ReaderAt, size int64, rep *ScanReport) bool {
	if rep.Torn {
		return false
	}
	frames := durableFrames(rep)
	want := encodeIndexFromFrames(frames)
	if size-rep.TailOffset != int64(len(want)) {
		return false
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, rep.TailOffset); err != nil {
		return false
	}
	return bytes.Equal(got, want)
}

// readFooterIndex parses the footer index at the end of the file,
// returning its entries. ok is false when the file does not end in a
// structurally valid v3 index: footer magic, a plausible window count,
// and entries that form a contiguous sequence of framed records exactly
// filling the data region.
func readFooterIndex(f io.ReaderAt, size int64, retry RetryPolicy) (offsets, lengths []int64, crcs []uint32, ok bool) {
	if size < footerSize {
		return nil, nil, nil, false
	}
	n, present := footerWindows(f, size)
	if !present || n > uint64(size)/indexEntrySize {
		return nil, nil, nil, false
	}
	num := int(n)
	indexSize := int64(indexEntrySize*num + footerSize)
	dataEnd := size - indexSize
	if dataEnd < 0 {
		return nil, nil, nil, false
	}
	idx := make([]byte, indexEntrySize*num)
	if err := readAtRetry(f, retry, idx, dataEnd); err != nil {
		return nil, nil, nil, false
	}
	offsets = make([]int64, num)
	lengths = make([]int64, num)
	crcs = make([]uint32, num)
	prevEnd := int64(0)
	for i := 0; i < num; i++ {
		offU := binary.LittleEndian.Uint64(idx[indexEntrySize*i:])
		lnU := binary.LittleEndian.Uint64(idx[indexEntrySize*i+8:])
		// Validate in the unsigned domain before narrowing: any entry
		// past dataEnd — including values that would wrap int64 — marks
		// the index corrupt.
		if offU > uint64(dataEnd) || lnU > uint64(dataEnd)-offU {
			return nil, nil, nil, false
		}
		off, ln := int64(offU), int64(lnU)
		if off != prevEnd+core.RecordHeaderSize {
			return nil, nil, nil, false
		}
		offsets[i] = off
		lengths[i] = ln
		crcs[i] = binary.LittleEndian.Uint32(idx[indexEntrySize*i+16:])
		prevEnd = off + ln
	}
	if prevEnd != dataEnd {
		return nil, nil, nil, false
	}
	return offsets, lengths, crcs, true
}

// resyncFromFooter resumes a journal scan that stopped at a corrupt
// frame header by cross-checking the footer index. The footer is adopted
// only when it is beyond reasonable doubt: structurally valid, covering
// more frames than the scan reached, and agreeing bit-for-bit with every
// frame the scan already verified. Each frame past the stop point is
// then classified by its own evidence — header and payload both good
// (FrameOK), payload good but header damaged (FrameBadHeader, repair
// rewrites it), or payload bad (FrameCorrupt, kept indexed). On success
// FooterOK is set and TailOffset advances to the start of the index, so
// repair never truncates windows a valid footer still reaches.
func resyncFromFooter(f io.ReaderAt, size int64, retry RetryPolicy, rep *ScanReport) error {
	frames := durableFrames(rep)
	offsets, lengths, crcs, ok := readFooterIndex(f, size, retry)
	if !ok || len(offsets) <= len(frames) {
		return nil
	}
	for i, fr := range frames {
		if offsets[i] != fr.Offset || lengths[i] != fr.Length || crcs[i] != fr.CRC {
			return nil
		}
	}
	rep.Frames = frames
	for k := len(frames); k < len(offsets); k++ {
		fi := FrameInfo{Index: k, Offset: offsets[k], Length: lengths[k], CRC: crcs[k]}
		sum, err := crcOfSection(f, retry, fi.Offset, fi.Length)
		if err != nil {
			return fmt.Errorf("storage: scan read window %d: %w", k, err)
		}
		var hdr [core.RecordHeaderSize]byte
		if err := readAtRetry(f, retry, hdr[:], fi.Offset-core.RecordHeaderSize); err != nil {
			return fmt.Errorf("storage: scan read at %d: %w", fi.Offset-core.RecordHeaderSize, err)
		}
		h, err := core.ParseRecordHeader(hdr[:])
		headerOK := err == nil && h.Length == fi.Length && h.PayloadCRC == fi.CRC
		if !headerOK {
			rep.BadHeaders = append(rep.BadHeaders, k)
		}
		switch {
		case sum != fi.CRC:
			fi.State = FrameCorrupt
			rep.Corrupt = append(rep.Corrupt, k)
		case headerOK:
			fi.State = FrameOK
			rep.Good++
		default:
			fi.State = FrameBadHeader
			rep.Good++
		}
		rep.Frames = append(rep.Frames, withStateS(classifyCodec(f, fi)))
	}
	rep.TailOffset = offsets[len(offsets)-1] + lengths[len(lengths)-1]
	rep.FooterOK = true
	return nil
}

// encodeIndexFromFrames builds the index + footer bytes for the given
// durable frames.
func encodeIndexFromFrames(frames []FrameInfo) []byte {
	offsets := make([]int64, len(frames))
	lengths := make([]int64, len(frames))
	crcs := make([]uint32, len(frames))
	for i, fr := range frames {
		offsets[i] = fr.Offset
		lengths[i] = fr.Length
		crcs[i] = fr.CRC
	}
	return encodeIndex(offsets, lengths, crcs)
}

// scanLegacy recognizes a v2 container (valid "STWX" footer, no frames)
// and verifies its windows against the index.
func scanLegacy(f io.ReaderAt, size int64, retry RetryPolicy) (*ScanReport, bool, error) {
	r, err := NewContainerReader(readerAtNopCloser{f}, size)
	if err != nil || r.framed {
		return nil, false, nil
	}
	rep := &ScanReport{Size: size, Legacy: true, FooterOK: true, FooterPresent: true, FooterWindows: r.NumWindows()}
	for i := 0; i < r.NumWindows(); i++ {
		fi := FrameInfo{Index: i, Offset: r.offsets[i], Length: r.lengths[i], CRC: r.crcs[i]}
		sum, err := crcOfSection(f, retry, fi.Offset, fi.Length)
		if err != nil {
			return nil, false, fmt.Errorf("storage: scan read window %d: %w", i, err)
		}
		if sum == fi.CRC {
			fi.State = FrameOK
			rep.Good++
		} else {
			fi.State = FrameCorrupt
			rep.Corrupt = append(rep.Corrupt, i)
		}
		rep.Frames = append(rep.Frames, withStateS(classifyCodec(f, fi)))
		rep.TailOffset = fi.Offset + fi.Length
	}
	return rep, true, nil
}

type readerAtNopCloser struct{ io.ReaderAt }

func (readerAtNopCloser) Close() error { return nil }

// RecoverOptions tunes RecoverContainerOpts.
type RecoverOptions struct {
	// Force permits repair to truncate tail bytes that a footer at the
	// end of the file still claims to index, when that footer could not
	// be validated against the journal. Without Force such repairs are
	// refused: the scan may have stopped early on localized damage, and
	// truncating would permanently destroy windows a reader (or a more
	// careful operator) might still reach through the footer.
	Force bool
}

// RecoverContainer scans the container at path and, if its footer index
// is missing, torn, or inconsistent with the journal, repairs the file
// in place. When the damage is a corrupt frame header with the footer
// still valid, repair rewrites the header and nothing is lost. Otherwise
// the torn tail is backed up to path+".tail.bak", truncated away, and a
// fresh index + footer is written over exactly the frames that are fully
// on disk (corrupt frames are kept and indexed, so their loss stays
// visible to readers and fsck rather than silently renumbering later
// windows). The repair is idempotent — re-running it, even after a crash
// mid-repair, reaches the same result. The returned report describes the
// state found by the pre-repair scan.
//
// Truncation that would discard windows an unvalidatable footer claims
// to index is refused; see RecoverOptions.Force.
func RecoverContainer(path string) (*ScanReport, error) {
	return RecoverContainerOpts(path, RecoverOptions{})
}

// RecoverContainerOpts is RecoverContainer with explicit options.
func RecoverContainerOpts(path string, opt RecoverOptions) (*ScanReport, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	rep, err := ScanContainer(f, st.Size())
	if err != nil {
		return nil, err
	}
	if rep.Legacy {
		return rep, fmt.Errorf("storage: %s is a legacy (v2) container with no journal frames; nothing to recover", path)
	}
	if rep.FooterOK {
		if len(rep.BadHeaders) == 0 {
			return rep, nil
		}
		// The index still reaches every window; only journal headers are
		// damaged. Rewrite them in place — no truncation, nothing lost.
		for _, k := range rep.BadHeaders {
			fr := rep.Frames[k]
			hdr := core.EncodeRecordHeader(core.RecordHeader{Length: fr.Length, PayloadCRC: fr.CRC})
			if _, err := f.WriteAt(hdr[:], fr.Offset-core.RecordHeaderSize); err != nil {
				return rep, fmt.Errorf("storage: rewriting frame header %d: %w", k, err)
			}
		}
		if err := f.Sync(); err != nil {
			return rep, fmt.Errorf("storage: syncing repaired container: %w", err)
		}
		return rep, nil
	}
	durable := durableFrames(rep)
	if len(durable) == 0 {
		return rep, fmt.Errorf("storage: %s contains no intact record frames; not a recoverable container", path)
	}
	if rep.FooterPresent && rep.FooterWindows > len(durable) && !opt.Force {
		return rep, fmt.Errorf("storage: %s: journal scan found %d durable frames but the footer claims %d windows and could not be validated; refusing to truncate data the footer may still reach (re-run with force after investigating)", path, len(durable), rep.FooterWindows)
	}
	if rep.TailOffset < st.Size() {
		if err := backupTail(path, f, rep.TailOffset, st.Size()); err != nil {
			return rep, fmt.Errorf("storage: backing up tail before truncation: %w", err)
		}
	}
	if err := f.Truncate(rep.TailOffset); err != nil {
		return rep, fmt.Errorf("storage: truncating torn tail: %w", err)
	}
	idx := encodeIndexFromFrames(durable)
	if _, err := f.WriteAt(idx, rep.TailOffset); err != nil {
		return rep, fmt.Errorf("storage: rewriting index: %w", err)
	}
	if err := f.Sync(); err != nil {
		return rep, fmt.Errorf("storage: syncing repaired container: %w", err)
	}
	return rep, nil
}

// backupTail copies the about-to-be-discarded byte range [from, to) of
// the container to path+".tail.bak", so even a misjudged repair stays
// reversible by hand.
func backupTail(path string, f io.ReaderAt, from, to int64) error {
	bak, err := os.Create(path + ".tail.bak")
	if err != nil {
		return err
	}
	_, cpErr := io.Copy(bak, io.NewSectionReader(f, from, to-from))
	if err := bak.Sync(); cpErr == nil {
		cpErr = err
	}
	if err := bak.Close(); cpErr == nil {
		cpErr = err
	}
	return cpErr
}

// footerWindows reads the window count a footer claims, for reports; ok
// is false when no valid footer magic is present.
func footerWindows(f io.ReaderAt, size int64) (n uint64, ok bool) {
	if size < footerSize {
		return 0, false
	}
	var tail [footerSize]byte
	if _, err := f.ReadAt(tail[:], size-footerSize); err != nil {
		return 0, false
	}
	switch [4]byte(tail[8:12]) {
	case containerMagic, containerMagicV2:
		return binary.LittleEndian.Uint64(tail[0:8]), true
	}
	return 0, false
}

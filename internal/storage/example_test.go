package storage_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/storage"
)

// Example demonstrates the container workflow: write compressed windows to
// a file, then randomly access one window later.
func Example() {
	dir, err := os.MkdirTemp("", "stwave-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.stw")

	// Some smooth data.
	d := grid.Dims{Nx: 12, Ny: 12, Nz: 12}
	window := grid.NewWindow(d)
	for t := 0; t < 10; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = math.Sin(0.1*float64(i) + 0.2*float64(t))
		}
		if err := window.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	opts := core.DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 16
	comp, err := core.New(opts)
	if err != nil {
		panic(err)
	}
	cw, err := comp.CompressWindow(window)
	if err != nil {
		panic(err)
	}

	writer, err := storage.CreateContainer(path)
	if err != nil {
		panic(err)
	}
	writer.Deflate = true // format v2: DEFLATE entropy stage + CRC32
	if _, err := writer.Append(cw); err != nil {
		panic(err)
	}
	if err := writer.Close(); err != nil {
		panic(err)
	}

	reader, err := storage.OpenContainer(path)
	if err != nil {
		panic(err)
	}
	defer reader.Close()
	got, err := reader.ReadWindow(0)
	if err != nil {
		panic(err)
	}
	recon, err := core.Decompress(got)
	if err != nil {
		panic(err)
	}
	fmt.Printf("windows: %d\n", reader.NumWindows())
	fmt.Printf("reconstructed %d slices of %v\n", recon.Len(), recon.Dims)
	// Output:
	// windows: 1
	// reconstructed 10 slices of 12x12x12
}

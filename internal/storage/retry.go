package storage

import (
	"errors"
	"syscall"
	"time"

	"stwave/internal/obs"
)

// RetryPolicy retries transient I/O errors with capped exponential
// backoff. Production burst buffers and parallel file systems return
// transient EIO/EAGAIN under contention; one failed syscall must not
// abort an in-situ compression run or fail a read that would succeed a
// millisecond later. The zero value performs no retries.
type RetryPolicy struct {
	Attempts  int           // total attempts including the first; <= 1 disables retries
	BaseDelay time.Duration // delay before the first retry
	MaxDelay  time.Duration // backoff cap; 0 means no cap

	// sleep stubs time.Sleep in tests.
	sleep func(time.Duration)
}

// DefaultRetryPolicy is the container read/write path default: three
// attempts, 2 ms initial backoff, capped at 50 ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// Do runs op, retrying while it fails with a transient error. The last
// error is returned; non-transient errors are returned immediately. Every
// retry (re-attempt after a transient failure) increments the
// "storage.retries_total" counter in the process-wide metrics registry —
// a rising rate is the early signal of a degrading burst buffer.
func (p RetryPolicy) Do(op func() error) error {
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || attempt >= p.Attempts || !IsTransient(err) {
			return err
		}
		obs.Default().Counter("storage.retries_total").Add(1)
		if p.sleep != nil {
			p.sleep(delay)
		} else {
			time.Sleep(delay)
		}
		delay *= 2
		if p.MaxDelay > 0 && delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// transienter lets error types (e.g. injected faults) declare themselves
// retryable without this package importing them.
type transienter interface{ Transient() bool }

// IsTransient reports whether err is worth retrying: kernel errnos that
// clear on their own under load, or any error declaring Transient().
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	for _, errno := range []syscall.Errno{syscall.EIO, syscall.EAGAIN, syscall.EINTR, syscall.ETIMEDOUT} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

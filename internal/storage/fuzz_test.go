package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"

	"stwave/internal/core"
)

type bytesReaderCloser struct{ *bytes.Reader }

func (bytesReaderCloser) Close() error { return nil }

// FuzzOpenContainer hammers the container index parser and journal
// scanner with mutated container images: they must reject or accept
// without panicking or over-allocating, every accepted window must read
// without panicking, and the scanner must never error on in-memory
// inputs.
func FuzzOpenContainer(f *testing.F) {
	// Seed with a real two-window container image.
	dir := f.TempDir()
	path := dir + "/seed.stw"
	buildFramed(f, path, 2)
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])           // torn footer
	f.Add(seed[:core.RecordHeaderSize]) // lone frame header
	f.Add([]byte("STW3"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		size := int64(len(data))
		r, err := NewContainerReader(bytesReaderCloser{bytes.NewReader(data)}, size)
		if err == nil {
			// Accepted: every window must be readable or fail cleanly.
			for i := 0; i < r.NumWindows(); i++ {
				if _, err := r.ReadWindow(i); err != nil &&
					!errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
					// Any error is fine — the assertion is no panic — but
					// verify the recorded state is consistent.
					_ = r.WindowErr(i)
				}
			}
			r.BadWindows()
		}
		// The journal scanner must handle the same image without error:
		// in-memory reads cannot fail, so a scan always produces a report.
		rep, err := ScanContainer(bytes.NewReader(data), size)
		if err != nil {
			t.Fatalf("scan errored on in-memory image: %v", err)
		}
		if rep.Good+len(rep.Corrupt) != len(durableFrames(rep)) {
			t.Fatalf("scan counts inconsistent: %d good + %d corrupt != %d durable",
				rep.Good, len(rep.Corrupt), len(durableFrames(rep)))
		}
	})
}

// Package storage models the tiered storage stack of the paper's Table I
// experiment — a fast node-local buffer tier (SSD / burst buffer) in front
// of a slower permanent tier (parallel filesystem) — and provides a real
// file container for compressed windows with per-window random access.
//
// The cost model is deliberately simple and deterministic: each tier has a
// sustained bandwidth and a per-operation latency, and transfer time is
// latency + bytes/bandwidth. The defaults are calibrated so the Table I
// reproduction matches the paper's measured machine (2 TB SSD at roughly
// 1.5 GB/s, a PFS sustaining ~540 MB/s for large writes).
package storage

import (
	"fmt"
	"sync"
	"time"
)

// Tier identifies a storage level.
type Tier int

const (
	// Buffer is the fast node-local tier (SSD / burst buffer).
	Buffer Tier = iota
	// Permanent is the parallel-filesystem tier.
	Permanent
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Buffer:
		return "buffer"
	case Permanent:
		return "permanent"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// TierSpec describes one tier's performance.
type TierSpec struct {
	// WriteBandwidth and ReadBandwidth are sustained rates in bytes/sec.
	WriteBandwidth float64
	ReadBandwidth  float64
	// Latency is the fixed per-operation cost.
	Latency time.Duration
}

// PerfModel accumulates simulated I/O time across tiers. It is safe for
// concurrent use: specs are immutable after NewModel, and the mutex
// guards the accumulator maps (concurrent simulation ranks account I/O
// through one shared model).
type PerfModel struct {
	specs map[Tier]TierSpec

	mu        sync.Mutex
	writeTime map[Tier]time.Duration
	readTime  map[Tier]time.Duration
	written   map[Tier]int64
	read      map[Tier]int64
}

// DefaultModel returns a model calibrated to the paper's test system: the
// Table I numbers imply ~1.5 GB/s SSD writes and reads (10 GB in
// 6.78 s / 6.5 s) and ~540 MB/s permanent-storage writes (10 GB in 18.9 s).
func DefaultModel() *PerfModel {
	return NewModel(map[Tier]TierSpec{
		Buffer: {
			WriteBandwidth: 10 * 1e9 / 6.78,
			ReadBandwidth:  10 * 1e9 / 6.50,
			Latency:        100 * time.Microsecond,
		},
		Permanent: {
			WriteBandwidth: 10 * 1e9 / 18.90,
			ReadBandwidth:  10 * 1e9 / 18.90,
			Latency:        5 * time.Millisecond,
		},
	})
}

// NewModel builds a model from explicit tier specs.
func NewModel(specs map[Tier]TierSpec) *PerfModel {
	m := &PerfModel{
		specs:     make(map[Tier]TierSpec, len(specs)),
		writeTime: make(map[Tier]time.Duration),
		readTime:  make(map[Tier]time.Duration),
		written:   make(map[Tier]int64),
		read:      make(map[Tier]int64),
	}
	for t, s := range specs {
		m.specs[t] = s
	}
	return m
}

// Spec returns the tier's configuration.
func (m *PerfModel) Spec(t Tier) (TierSpec, bool) {
	s, ok := m.specs[t]
	return s, ok
}

// WriteCost returns the simulated time to write n bytes to the tier,
// without recording it.
func (m *PerfModel) WriteCost(t Tier, n int64) (time.Duration, error) {
	s, ok := m.specs[t]
	if !ok {
		return 0, fmt.Errorf("storage: unknown tier %v", t)
	}
	if n < 0 {
		return 0, fmt.Errorf("storage: negative byte count %d", n)
	}
	return s.Latency + time.Duration(float64(n)/s.WriteBandwidth*float64(time.Second)), nil
}

// ReadCost returns the simulated time to read n bytes from the tier.
func (m *PerfModel) ReadCost(t Tier, n int64) (time.Duration, error) {
	s, ok := m.specs[t]
	if !ok {
		return 0, fmt.Errorf("storage: unknown tier %v", t)
	}
	if n < 0 {
		return 0, fmt.Errorf("storage: negative byte count %d", n)
	}
	return s.Latency + time.Duration(float64(n)/s.ReadBandwidth*float64(time.Second)), nil
}

// RecordWrite accounts a write of n bytes and returns its cost.
func (m *PerfModel) RecordWrite(t Tier, n int64) (time.Duration, error) {
	d, err := m.WriteCost(t, n)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.writeTime[t] += d
	m.written[t] += n
	m.mu.Unlock()
	return d, nil
}

// RecordRead accounts a read of n bytes and returns its cost.
func (m *PerfModel) RecordRead(t Tier, n int64) (time.Duration, error) {
	d, err := m.ReadCost(t, n)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.readTime[t] += d
	m.read[t] += n
	m.mu.Unlock()
	return d, nil
}

// WriteTime returns the accumulated simulated write time on the tier.
func (m *PerfModel) WriteTime(t Tier) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeTime[t]
}

// ReadTime returns the accumulated simulated read time on the tier.
func (m *PerfModel) ReadTime(t Tier) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.readTime[t]
}

// BytesWritten returns the accumulated bytes written to the tier.
func (m *PerfModel) BytesWritten(t Tier) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written[t]
}

// BytesRead returns the accumulated bytes read from the tier.
func (m *PerfModel) BytesRead(t Tier) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.read[t]
}

// TotalIO returns total simulated I/O time across all tiers — the paper's
// "Total I/O" column.
func (m *PerfModel) TotalIO() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var d time.Duration
	for _, v := range m.writeTime {
		d += v
	}
	for _, v := range m.readTime {
		d += v
	}
	return d
}

// Reset clears accumulated counters (specs are kept).
func (m *PerfModel) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for t := range m.writeTime {
		delete(m.writeTime, t)
	}
	for t := range m.readTime {
		delete(m.readTime, t)
	}
	for t := range m.written {
		delete(m.written, t)
	}
	for t := range m.read {
		delete(m.read, t)
	}
}

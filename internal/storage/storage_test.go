package storage

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stwave/internal/core"
	"stwave/internal/grid"
)

func TestTierString(t *testing.T) {
	if Buffer.String() != "buffer" || Permanent.String() != "permanent" {
		t.Error("tier names")
	}
	if Tier(9).String() != "Tier(9)" {
		t.Error("unknown tier formatting")
	}
}

func TestDefaultModelMatchesTableI(t *testing.T) {
	// The paper's Table I: 10 GB raw written to permanent storage in
	// 18.90 s; 10 GB written to and read from the SSD in 6.78 s + 6.5 s.
	m := DefaultModel()
	tenGB := int64(10 * 1e9)
	w, err := m.WriteCost(Permanent, tenGB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Seconds()-18.90) > 0.1 {
		t.Errorf("permanent write of 10 GB costs %.2fs, want ~18.90s", w.Seconds())
	}
	bw, err := m.WriteCost(Buffer, tenGB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bw.Seconds()-6.78) > 0.1 {
		t.Errorf("buffer write of 10 GB costs %.2fs, want ~6.78s", bw.Seconds())
	}
	br, err := m.ReadCost(Buffer, tenGB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(br.Seconds()-6.50) > 0.1 {
		t.Errorf("buffer read of 10 GB costs %.2fs, want ~6.50s", br.Seconds())
	}
}

func TestModelAccumulates(t *testing.T) {
	m := DefaultModel()
	if _, err := m.RecordWrite(Buffer, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecordWrite(Buffer, 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecordRead(Buffer, 5e8); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecordWrite(Permanent, 1e8); err != nil {
		t.Fatal(err)
	}
	if m.BytesWritten(Buffer) != 2e9 || m.BytesRead(Buffer) != 5e8 || m.BytesWritten(Permanent) != 1e8 {
		t.Errorf("byte counters wrong: %d %d %d", m.BytesWritten(Buffer), m.BytesRead(Buffer), m.BytesWritten(Permanent))
	}
	if m.TotalIO() != m.WriteTime(Buffer)+m.ReadTime(Buffer)+m.WriteTime(Permanent) {
		t.Error("TotalIO does not sum tier components")
	}
	m.Reset()
	if m.TotalIO() != 0 || m.BytesWritten(Buffer) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestModelErrors(t *testing.T) {
	m := NewModel(map[Tier]TierSpec{Buffer: {WriteBandwidth: 1e9, ReadBandwidth: 1e9}})
	if _, err := m.WriteCost(Permanent, 10); err == nil {
		t.Error("expected error for unconfigured tier")
	}
	if _, err := m.WriteCost(Buffer, -1); err == nil {
		t.Error("expected error for negative bytes")
	}
	if _, err := m.ReadCost(Buffer, -1); err == nil {
		t.Error("expected error for negative bytes on read")
	}
}

func TestModelLatencyDominatesSmallOps(t *testing.T) {
	m := NewModel(map[Tier]TierSpec{
		Permanent: {WriteBandwidth: 1e9, ReadBandwidth: 1e9, Latency: 10 * time.Millisecond},
	})
	d, err := m.WriteCost(Permanent, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d < 10*time.Millisecond {
		t.Errorf("1-byte write cost %v below latency", d)
	}
}

func testWindow(d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for ts := 0; ts < slices; ts++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)*0.1 + float64(ts)*0.2)
		}
		if err := w.Append(f, float64(ts)); err != nil {
			panic(err)
		}
	}
	return w
}

func TestContainerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.stw")
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}

	opts := core.DefaultOptions()
	opts.WindowSize = 5
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}

	cw1, err := comp.CompressWindow(testWindow(d, 5))
	if err != nil {
		t.Fatal(err)
	}
	cw2, err := comp.CompressWindow(testWindow(d, 3))
	if err != nil {
		t.Fatal(err)
	}

	w, err := CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	i1, err := w.Append(cw1)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := w.Append(cw2)
	if err != nil {
		t.Fatal(err)
	}
	if i1 != 0 || i2 != 1 {
		t.Errorf("indices %d, %d", i1, i2)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(cw1); err == nil {
		t.Error("append after close must fail")
	}

	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumWindows() != 2 {
		t.Fatalf("NumWindows = %d", r.NumWindows())
	}
	// Random access: read the second window first.
	got2, err := r.ReadWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumSlices() != 3 {
		t.Errorf("window 1 has %d slices, want 3", got2.NumSlices())
	}
	got1, err := r.ReadWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	if got1.NumSlices() != 5 {
		t.Errorf("window 0 has %d slices, want 5", got1.NumSlices())
	}
	// Decompression must succeed from container-loaded windows.
	win, err := core.Decompress(got1)
	if err != nil {
		t.Fatal(err)
	}
	if win.Len() != 5 {
		t.Errorf("decompressed %d slices", win.Len())
	}
	if sz, err := r.WindowSizeBytes(0); err != nil || sz <= 0 {
		t.Errorf("WindowSizeBytes = %d, %v", sz, err)
	}
	if _, err := r.ReadWindow(5); err == nil {
		t.Error("out-of-range read must fail")
	}
	if _, err := r.WindowSizeBytes(-1); err == nil {
		t.Error("out-of-range size must fail")
	}
}

func TestOpenContainerRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.stw")
	if err := writeFile(path, []byte("this is not a container file at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenContainer(path); err == nil {
		t.Error("expected error for garbage file")
	}
	tiny := filepath.Join(dir, "tiny.stw")
	if err := writeFile(tiny, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenContainer(tiny); err == nil {
		t.Error("expected error for tiny file")
	}
	if _, err := OpenContainer(filepath.Join(dir, "missing.stw")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestBurstBuffer(t *testing.T) {
	dir := t.TempDir()
	model := DefaultModel()
	d := grid.Dims{Nx: 6, Ny: 5, Nz: 4}
	b, err := NewBurstBuffer(dir, model, d)
	if err != nil {
		t.Fatal(err)
	}
	f := grid.NewField3D(6, 5, 4)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	id, err := b.PutSlice(f)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
	if model.BytesWritten(Buffer) != f.RawSizeBytes(4) {
		t.Errorf("recorded %d bytes written", model.BytesWritten(Buffer))
	}
	g, err := b.GetSlice(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-g.Data[i]) > 1e-4 {
			t.Fatalf("sample %d: %g vs %g", i, f.Data[i], g.Data[i])
		}
	}
	if model.BytesRead(Buffer) != f.RawSizeBytes(4) {
		t.Errorf("recorded %d bytes read", model.BytesRead(Buffer))
	}
	if err := b.Drop(id); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Error("Drop did not remove slice")
	}
	if _, err := b.GetSlice(id); err == nil {
		t.Error("reading dropped slice must fail")
	}
	if err := b.Drop(id); err == nil {
		t.Error("double drop must fail")
	}
	bad := grid.NewField3D(2, 2, 2)
	if _, err := b.PutSlice(bad); err == nil {
		t.Error("dims mismatch must fail")
	}
}

func TestBurstBufferValidation(t *testing.T) {
	d := grid.Dims{Nx: 2, Ny: 2, Nz: 2}
	if _, err := NewBurstBuffer(t.TempDir(), nil, d); err == nil {
		t.Error("expected error for nil model")
	}
	if _, err := NewBurstBuffer(t.TempDir(), DefaultModel(), grid.Dims{}); err == nil {
		t.Error("expected error for invalid dims")
	}
	if _, err := NewBurstBuffer("/does/not/exist", DefaultModel(), d); err == nil {
		t.Error("expected error for missing dir")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestContainerDetectsPayloadCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.stw")
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	opts := core.DefaultOptions()
	opts.WindowSize = 5
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(testWindow(d, 5))
	if err != nil {
		t.Fatal(err)
	}
	w, err := CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(cw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit deep inside the float payload — structurally valid but
	// silently wrong without checksums.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err) // index is intact; open should succeed
	}
	defer r.Close()
	if _, err := r.ReadWindow(0); err == nil {
		t.Error("payload bit-flip not detected by CRC")
	}
}

func TestContainerDeflateOption(t *testing.T) {
	dir := t.TempDir()
	d := grid.Dims{Nx: 12, Ny: 12, Nz: 12}
	opts := core.DefaultOptions()
	opts.WindowSize = 8
	opts.Ratio = 64
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(testWindow(d, 8))
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, deflate bool) int64 {
		path := filepath.Join(dir, name)
		w, err := CreateContainer(path)
		if err != nil {
			t.Fatal(err)
		}
		w.Deflate = deflate
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Verify it reads back and decompresses.
		r, err := OpenContainer(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got, err := r.ReadWindow(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Decompress(got); err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	rawSize := write("raw.stw", false)
	deflSize := write("defl.stw", true)
	if deflSize >= rawSize {
		t.Errorf("deflated container %d bytes not below raw %d", deflSize, rawSize)
	}
}

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/obs"
)

// BurstBuffer stages raw time slices on the fast tier, the way the paper's
// Figure 1 workflow parks a window of slices on the SSD before
// spatiotemporal compression. Slices are really written to and read from
// files under dir (exercising the true serialization path); timing is
// accounted through the PerfModel so experiments are deterministic and can
// model hardware other than the machine running them.
//
// BurstBuffer is safe for concurrent use: simulation ranks stage slices
// while the compressor drains them, so Put/Get/Drop may race. The mutex
// guards the id counter and the live map; the file I/O itself runs
// outside the lock (distinct ids touch distinct files).
type BurstBuffer struct {
	dir   string
	model *PerfModel
	dims  grid.Dims

	mu   sync.Mutex
	next int
	live map[int]string
}

// NewBurstBuffer creates a staging area in dir for slices of the given
// dims. dir must exist and belongs exclusively to this buffer: slice
// files left behind by a crashed prior run are garbage-collected here
// (staged slices are a cache of data the producer still owns — after a
// crash they are unaccounted disk that would let repeated crash/restart
// cycles fill the burst tier).
func NewBurstBuffer(dir string, model *PerfModel, dims grid.Dims) (*BurstBuffer, error) {
	if model == nil {
		return nil, fmt.Errorf("storage: nil perf model")
	}
	if !dims.Valid() {
		return nil, fmt.Errorf("storage: invalid dims %v", dims)
	}
	st, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: buffer dir: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("storage: %s is not a directory", dir)
	}
	orphans, err := filepath.Glob(filepath.Join(dir, "slice-*.raw"))
	if err != nil {
		return nil, fmt.Errorf("storage: scanning buffer dir: %w", err)
	}
	for _, p := range orphans {
		if err := os.Remove(p); err != nil {
			return nil, fmt.Errorf("storage: removing orphaned slice %s: %w", p, err)
		}
	}
	if len(orphans) > 0 {
		obs.Default().Counter("storage.buffer_orphans_removed_total").Add(int64(len(orphans)))
	}
	return &BurstBuffer{dir: dir, model: model, dims: dims, live: make(map[int]string)}, nil
}

// PutSlice writes a slice to the buffer tier and returns its id.
func (b *BurstBuffer) PutSlice(f *grid.Field3D) (int, error) {
	return PutSliceOf(b, f)
}

// PutSlice32 stages a float32 slice. The on-disk staging format is
// float32 either way (SaveRawFile), so both precisions share the tier and
// the perf accounting.
func (b *BurstBuffer) PutSlice32(f *grid.Field3D32) (int, error) {
	return PutSliceOf(b, f)
}

// PutSliceOf is the precision-generic staging write behind PutSlice and
// PutSlice32.
func PutSliceOf[F num.Float](b *BurstBuffer, f *grid.Field3DOf[F]) (int, error) {
	if f.Dims != b.dims {
		return 0, fmt.Errorf("storage: slice dims %v != buffer dims %v", f.Dims, b.dims)
	}
	b.mu.Lock()
	id := b.next
	b.next++
	b.mu.Unlock()
	path := filepath.Join(b.dir, fmt.Sprintf("slice-%06d.raw", id))
	if err := f.SaveRawFile(path); err != nil {
		// A torn slice file must not stay behind: it is never registered
		// in live, so nothing would ever Drop it, and the next run's
		// orphan GC is a crash-recovery path, not a leak plan.
		os.Remove(path) //stlint:ignore uncheckederr best-effort cleanup of a partial file; the write error is what matters
		return 0, err
	}
	if _, err := b.model.RecordWrite(Buffer, f.RawSizeBytes(4)); err != nil {
		os.Remove(path) //stlint:ignore uncheckederr best-effort cleanup; the accounting error is what matters
		return 0, err
	}
	b.mu.Lock()
	b.live[id] = path
	b.mu.Unlock()
	return id, nil
}

// GetSlice reads a staged slice back.
func (b *BurstBuffer) GetSlice(id int) (*grid.Field3D, error) {
	return GetSliceOf[float64](b, id)
}

// GetSlice32 reads a staged slice back at float32 without a widen pass.
func (b *BurstBuffer) GetSlice32(id int) (*grid.Field3D32, error) {
	return GetSliceOf[float32](b, id)
}

// GetSliceOf is the precision-generic staging read behind GetSlice and
// GetSlice32.
func GetSliceOf[F num.Float](b *BurstBuffer, id int) (*grid.Field3DOf[F], error) {
	b.mu.Lock()
	path, ok := b.live[id]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: no slice %d in buffer", id)
	}
	f, err := grid.LoadRawFileOf[F](path, b.dims.Nx, b.dims.Ny, b.dims.Nz)
	if err != nil {
		return nil, err
	}
	if _, err := b.model.RecordRead(Buffer, f.RawSizeBytes(4)); err != nil {
		return nil, err
	}
	return f, nil
}

// Drop removes a staged slice (after it has been compressed away).
func (b *BurstBuffer) Drop(id int) error {
	b.mu.Lock()
	path, ok := b.live[id]
	delete(b.live, id)
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: no slice %d in buffer", id)
	}
	return os.Remove(path)
}

// Len returns the number of staged slices.
func (b *BurstBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.live)
}

// Model returns the buffer's perf model.
func (b *BurstBuffer) Model() *PerfModel { return b.model }

package storage

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"stwave/internal/core"
	"stwave/internal/obs"
)

// Container file format v3: a journal of record-framed compressed
// windows followed by a footer index enabling random access to any
// window (the capability the paper notes is otherwise lost with temporal
// compression).
//
//	record 0: frame header (core.RecordHeaderSize bytes) + window 0 bytes
//	record 1: frame header + window 1 bytes
//	...
//	index: numWindows * (payload offset uint64, length uint64, crc32 uint32)
//	footer: numWindows uint64, magic "STW3"
//
// Every record is self-delimiting (magic, length, payload CRC, header
// CRC — see core/record.go), so the data region is a valid journal at
// every byte boundary: a crash before Close loses at most the window
// being written, and RecoverContainer rebuilds the index from the frames
// alone. Index entries carry a CRC32 of their window's payload so silent
// corruption is detected at read time.
//
// Format v2 ("STWX" footer, no record frames) is still readable; it
// cannot be scanned for recovery.
var (
	containerMagic   = [4]byte{'S', 'T', 'W', '3'}
	containerMagicV2 = [4]byte{'S', 'T', 'W', 'X'}
)

const (
	indexEntrySize = 20
	footerSize     = 12
)

// ErrCorrupt tags window reads that failed their checksum; callers use
// errors.Is to distinguish data loss (degraded-mode candidates) from
// transient I/O failures.
var ErrCorrupt = errors.New("storage: window corrupt")

// SyncPolicy says when a ContainerWriter calls fsync. Durability is a
// spectrum: in-situ runs appending from a live simulation want
// SyncPerWindow so a node failure loses at most the window in flight;
// offline re-compressions can take SyncNever and rely on the OS.
type SyncPolicy int

const (
	// SyncNever issues no fsync; the OS flushes when it pleases.
	SyncNever SyncPolicy = iota
	// SyncPerWindow fsyncs after every appended window, bounding loss on
	// power failure to the window being written.
	SyncPerWindow
	// SyncOnClose fsyncs once, before the footer is finalized in Close.
	SyncOnClose
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncPerWindow:
		return "window"
	case SyncOnClose:
		return "close"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -fsync flag spellings.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "window", "per-window":
		return SyncPerWindow, nil
	case "close", "on-close":
		return SyncOnClose, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want never, window, or close)", s)
}

// WritableFile is the file surface ContainerWriter needs. *os.File
// satisfies it; faultio.File wraps it with injected faults for the
// crash-recovery test matrix.
type WritableFile interface {
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// ContainerWriter appends compressed windows to a file as framed journal
// records. Configure the exported fields before the first Append.
type ContainerWriter struct {
	// Deflate, when set before the first Append, writes windows in the
	// DEFLATE-framed format (core format version 2): dramatically smaller
	// files at high ratios, at some CPU cost on write and read.
	Deflate bool
	// Sync is the fsync policy (default SyncNever).
	Sync SyncPolicy
	// Retry governs transient write-error retries (default
	// DefaultRetryPolicy; zero value disables retries).
	Retry RetryPolicy

	f       WritableFile
	path    string // final path (atomic mode); "" otherwise
	tmpPath string // staging path (atomic mode); "" otherwise
	offsets []int64
	lengths []int64
	crcs    []uint32
	pos     int64
	buf     bytes.Buffer
	closed  bool
	err     error // sticky: set by a failed Append, fails all later calls
}

// CreateContainer opens a new container file for writing (truncating any
// existing file). Windows are journaled directly at path, so a crash
// leaves a footer-less container that RecoverContainer can rebuild.
func CreateContainer(path string) (*ContainerWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewContainerWriter(f), nil
}

// CreateContainerAtomic stages the container at path+".tmp" and renames
// it over path in Close, so the final path only ever holds a complete,
// indexed container. A crash leaves the journal at the staging path for
// RecoverContainer. The rename is fsync-backed when Sync != SyncNever.
func CreateContainerAtomic(path string) (*ContainerWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := NewContainerWriter(f)
	w.path = path
	w.tmpPath = tmp
	return w, nil
}

// NewContainerWriter writes a container to an already-open file. The
// writer owns f (Close closes it). Atomic finalize is unavailable on
// this path — the writer has no path to rename.
func NewContainerWriter(f WritableFile) *ContainerWriter {
	return &ContainerWriter{f: f, Retry: DefaultRetryPolicy()}
}

// writeAt writes buf at off, retrying transient errors per the policy.
// The write is positional, so a retry after a partial write simply lays
// the full buffer down again. Successful writes record their latency and
// byte count in the process-wide metrics registry.
func (w *ContainerWriter) writeAt(buf []byte, off int64) error {
	start := time.Now()
	err := w.Retry.Do(func() error {
		_, err := w.f.WriteAt(buf, off)
		return err
	})
	if err == nil {
		obs.Default().Histogram("storage.write_seconds").ObserveSince(start)
		obs.Default().Counter("storage.write_bytes_total").Add(int64(len(buf)))
	}
	return err
}

// syncFile fsyncs the container file, retrying transient errors and
// recording the latency of successful syncs — the fsync histogram is how
// operators see an over-aggressive -fsync policy costing throughput.
func (w *ContainerWriter) syncFile() error {
	start := time.Now()
	err := w.Retry.Do(w.f.Sync)
	if err == nil {
		obs.Default().Histogram("storage.fsync_seconds").ObserveSince(start)
	}
	return err
}

// Append writes one compressed window as a framed record and returns its
// index. A failed Append (after retries) makes the writer sticky-fail:
// the half-written record is not indexed, its bytes are truncated away
// best-effort, and every later Append or Close returns the same error —
// the caller must not keep appending past a hole in the journal.
func (w *ContainerWriter) Append(cw *core.CompressedWindow) (int, error) {
	return w.AppendCtx(context.Background(), cw)
}

// AppendCtx is Append with context propagation: when ctx carries a trace,
// the encode+write of the record is captured as a "storage.append_window"
// span carrying the payload size.
func (w *ContainerWriter) AppendCtx(ctx context.Context, cw *core.CompressedWindow) (int, error) {
	_, sp := obs.Start(ctx, "storage.append_window")
	defer sp.End()
	if w.closed {
		return 0, fmt.Errorf("storage: container already closed")
	}
	if w.err != nil {
		return 0, w.err
	}
	w.buf.Reset()
	w.buf.Write(make([]byte, core.RecordHeaderSize)) // frame placeholder
	var err error
	if w.Deflate {
		_, err = cw.WriteToDeflated(&w.buf)
	} else {
		_, err = cw.WriteTo(&w.buf)
	}
	if err != nil {
		return 0, fmt.Errorf("storage: encoding window: %w", err)
	}
	rec := w.buf.Bytes()
	sp.SetAttr("bytes", strconv.Itoa(len(rec)-core.RecordHeaderSize))
	return w.appendRecord("window")
}

// AppendGap journals a gap marker in place of a shed window: the marker
// rides the same record framing and footer index as a compressed window,
// so every downstream consumer (recovery scan, fsck, timeline layout)
// accounts for the dropped slices without the timeline ever shifting.
// Returns the entry index. Failure semantics match Append (sticky error,
// best-effort trim).
func (w *ContainerWriter) AppendGap(g core.GapMarker) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: container already closed")
	}
	if w.err != nil {
		return 0, w.err
	}
	w.buf.Reset()
	w.buf.Write(make([]byte, core.RecordHeaderSize)) // frame placeholder
	payload := g.Encode()
	w.buf.Write(payload[:])
	obs.Default().Counter("storage.gaps_appended_total." + g.Reason.String()).Add(1)
	return w.appendRecord("gap marker")
}

// appendRecord frames w.buf (record-header placeholder + payload) as a
// journal record, writes it at the tail, applies the per-window sync
// policy, and indexes it. what names the entry kind in errors.
func (w *ContainerWriter) appendRecord(what string) (int, error) {
	rec := w.buf.Bytes()
	payload := rec[core.RecordHeaderSize:]
	crc := crc32.ChecksumIEEE(payload)
	hdr := core.EncodeRecordHeader(core.RecordHeader{Length: int64(len(payload)), PayloadCRC: crc})
	copy(rec[:core.RecordHeaderSize], hdr[:])
	if err := w.writeAt(rec, w.pos); err != nil {
		w.err = fmt.Errorf("storage: appending %s %d: %w", what, len(w.offsets), err)
		// Drop any torn prefix so the durable journal ends at a record
		// boundary; recovery scans cope even if this fails.
		w.f.Truncate(w.pos) //stlint:ignore uncheckederr best-effort trim; recovery scans cope with a torn tail
		return 0, w.err
	}
	if w.Sync == SyncPerWindow {
		if err := w.syncFile(); err != nil {
			w.err = fmt.Errorf("storage: syncing %s %d: %w", what, len(w.offsets), err)
			// The record is fully written but its durability was never
			// acknowledged: drop it, as on the write-failure path, so a
			// later recovery scan cannot resurrect a window the caller
			// was told failed (and may have rewritten elsewhere).
			w.f.Truncate(w.pos) //stlint:ignore uncheckederr best-effort trim; the caller was already told the append failed
			return 0, w.err
		}
	}
	w.offsets = append(w.offsets, w.pos+core.RecordHeaderSize)
	w.lengths = append(w.lengths, int64(len(payload)))
	w.crcs = append(w.crcs, crc)
	w.pos += int64(len(rec))
	return len(w.offsets) - 1, nil
}

// ClearError re-arms a sticky-failed writer so a backpressure policy can
// retry: a transient ENOSPC or EIO that failed an Append does not have to
// end the whole ingest run. It succeeds only if the journal can be proven
// to end at the last acknowledged record boundary — the failed append's
// best-effort trim is re-attempted here, and if the file still cannot be
// truncated the error stays sticky (appending past a torn record would
// corrupt the journal).
func (w *ContainerWriter) ClearError() error {
	if w.closed {
		return fmt.Errorf("storage: container already closed")
	}
	if w.err == nil {
		return nil
	}
	if err := w.Retry.Do(func() error { return w.f.Truncate(w.pos) }); err != nil {
		return fmt.Errorf("storage: cannot re-arm writer, journal tail not trimmable: %w", err)
	}
	w.err = nil
	return nil
}

// encodeIndex serializes an index + footer for the given entries.
func encodeIndex(offsets, lengths []int64, crcs []uint32) []byte {
	buf := make([]byte, indexEntrySize*len(offsets)+footerSize)
	for i := range offsets {
		// Writer bookkeeping can never go negative; a wrapped unsigned
		// entry here would validate as a multi-exabyte window on read.
		if offsets[i] < 0 || lengths[i] < 0 {
			panic(fmt.Sprintf("storage: negative index entry %d: off=%d len=%d", i, offsets[i], lengths[i]))
		}
		binary.LittleEndian.PutUint64(buf[indexEntrySize*i:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(buf[indexEntrySize*i+8:], uint64(lengths[i]))
		binary.LittleEndian.PutUint32(buf[indexEntrySize*i+16:], crcs[i])
	}
	tail := buf[indexEntrySize*len(offsets):]
	binary.LittleEndian.PutUint64(tail[0:8], uint64(len(offsets)))
	copy(tail[8:12], containerMagic[:])
	return buf
}

// cleanup closes the file and, on the atomic path, removes the staging
// file — a failed Close must not leave a half-finalized container behind
// (the journal is gone with it, but the caller was told the write
// failed; on the non-atomic path the journal survives for recovery).
func (w *ContainerWriter) cleanup() {
	w.f.Close()          //stlint:ignore uncheckederr cleanup after a failure already being reported
	if w.tmpPath != "" { //stlint:ignore uncheckederr staging file is disposable; Remove failure leaves only litter
		os.Remove(w.tmpPath)
	}
}

// Close finalizes the footer index and closes the file. On the atomic
// path it then renames the staging file over the final path and fsyncs
// the directory, so Close is all-or-nothing: either the complete
// container appears at path, or nothing does. After a sticky Append
// error, Close cleans up and returns that error instead of writing an
// index that lies about the journal.
func (w *ContainerWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		w.cleanup()
		return w.err
	}
	if w.Sync != SyncNever {
		if err := w.syncFile(); err != nil {
			w.cleanup()
			return fmt.Errorf("storage: syncing data region: %w", err)
		}
	}
	if err := w.writeAt(encodeIndex(w.offsets, w.lengths, w.crcs), w.pos); err != nil {
		w.cleanup()
		return fmt.Errorf("storage: writing index: %w", err)
	}
	if w.Sync != SyncNever {
		if err := w.syncFile(); err != nil {
			w.cleanup()
			return fmt.Errorf("storage: syncing index: %w", err)
		}
	}
	if err := w.f.Close(); err != nil {
		if w.tmpPath != "" {
			os.Remove(w.tmpPath) //stlint:ignore uncheckederr staging file is disposable; the Close error is what matters
		}
		return err
	}
	if w.tmpPath != "" {
		if err := os.Rename(w.tmpPath, w.path); err != nil {
			os.Remove(w.tmpPath) //stlint:ignore uncheckederr staging file is disposable; the Rename error is what matters
			return fmt.Errorf("storage: finalizing container: %w", err)
		}
		if w.Sync != SyncNever {
			syncDir(filepath.Dir(w.path))
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //stlint:ignore uncheckederr best-effort by contract: some filesystems refuse directory fsync
	d.Close() //stlint:ignore uncheckederr read-only directory handle; nothing to flush
}

// ReadableFile is the file surface ContainerReader needs. *os.File
// satisfies it.
type ReadableFile interface {
	io.ReaderAt
	Close() error
}

// ContainerReader provides random access to the windows of a container
// file. It is safe for concurrent use: all file access goes through
// ReadAt, which carries no shared cursor. Set Retry before first use.
type ContainerReader struct {
	// Retry governs transient read-error retries (default
	// DefaultRetryPolicy). Set before the first read.
	Retry RetryPolicy

	f       ReadableFile
	size    int64
	framed  bool // v3: every window is preceded by a record frame
	offsets []int64
	lengths []int64
	crcs    []uint32

	mu     sync.Mutex
	winErr map[int]error // windows whose last read or verify failed CRC
}

// OpenContainer opens a container file and reads its index.
func OpenContainer(path string) (*ContainerReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //stlint:ignore uncheckederr read-only handle released on an error path already being reported
		return nil, err
	}
	r, err := NewContainerReader(f, st.Size())
	if err != nil {
		f.Close() //stlint:ignore uncheckederr read-only handle released on an error path already being reported
		return nil, fmt.Errorf("storage: %s: %w", path, err)
	}
	return r, nil
}

// NewContainerReader reads a container from an already-open file of the
// given size. The reader owns f (Close closes it). The footer index is
// validated entry by entry — offsets and lengths that are negative,
// overlap, run past the data region, or leave no room for their record
// frame are rejected here, instead of surfacing later as a confusing
// read error.
func NewContainerReader(f ReadableFile, size int64) (*ContainerReader, error) {
	if size < footerSize {
		return nil, fmt.Errorf("storage: %d bytes is too small to be a container", size)
	}
	var tail [footerSize]byte
	if _, err := f.ReadAt(tail[:], size-footerSize); err != nil {
		return nil, err
	}
	framed := false
	switch [4]byte(tail[8:12]) {
	case containerMagic:
		framed = true
	case containerMagicV2:
	default:
		return nil, fmt.Errorf("storage: bad container magic %q", tail[8:12])
	}
	numU := binary.LittleEndian.Uint64(tail[0:8])
	if numU > uint64(size)/indexEntrySize {
		return nil, fmt.Errorf("storage: corrupt container index (%d windows)", numU)
	}
	num := int(numU)
	indexSize := int64(indexEntrySize*num + footerSize)
	dataEnd := size - indexSize
	if dataEnd < 0 {
		return nil, fmt.Errorf("storage: corrupt container index (%d windows)", num)
	}
	idx := make([]byte, indexEntrySize*num)
	if _, err := f.ReadAt(idx, dataEnd); err != nil {
		return nil, err
	}
	r := &ContainerReader{
		Retry:   DefaultRetryPolicy(),
		f:       f,
		size:    size,
		framed:  framed,
		offsets: make([]int64, num),
		lengths: make([]int64, num),
		crcs:    make([]uint32, num),
		winErr:  make(map[int]error),
	}
	var prevEnd uint64
	for i := 0; i < num; i++ {
		off := binary.LittleEndian.Uint64(idx[indexEntrySize*i:])
		ln := binary.LittleEndian.Uint64(idx[indexEntrySize*i+8:])
		minOff := prevEnd
		if framed {
			minOff += core.RecordHeaderSize
		}
		if off < minOff {
			return nil, fmt.Errorf("storage: corrupt index: window %d at offset %d overlaps previous data (need >= %d)", i, off, minOff)
		}
		if off > uint64(dataEnd) || ln > uint64(dataEnd)-off {
			return nil, fmt.Errorf("storage: corrupt index: window %d [%d, %d+%d) runs past data region (%d bytes)", i, off, off, ln, dataEnd)
		}
		r.offsets[i] = int64(off)
		r.lengths[i] = int64(ln)
		r.crcs[i] = binary.LittleEndian.Uint32(idx[indexEntrySize*i+16:])
		prevEnd = off + ln
	}
	return r, nil
}

// NumWindows returns the number of windows in the container.
func (r *ContainerReader) NumWindows() int { return len(r.offsets) }

// WindowSizeBytes returns the serialized size of window i.
func (r *ContainerReader) WindowSizeBytes(i int) (int64, error) {
	if i < 0 || i >= len(r.lengths) {
		return 0, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.lengths))
	}
	return r.lengths[i], nil
}

// readAt fills buf from offset off, retrying transient errors.
// Successful reads record their latency and byte count in the
// process-wide metrics registry.
func (r *ContainerReader) readAt(buf []byte, off int64) error {
	start := time.Now()
	err := r.Retry.Do(func() error {
		_, err := r.f.ReadAt(buf, off)
		return err
	})
	if err == nil {
		obs.Default().Histogram("storage.read_seconds").ObserveSince(start)
		obs.Default().Counter("storage.read_bytes_total").Add(int64(len(buf)))
	}
	return err
}

// recordErr tracks window i's corruption state for WindowErr/BadWindows.
func (r *ContainerReader) recordErr(i int, err error) {
	r.mu.Lock()
	if err != nil {
		r.winErr[i] = err
	} else {
		delete(r.winErr, i)
	}
	r.mu.Unlock()
}

// WindowErr returns the corruption error recorded for window i by the
// last ReadWindow or VerifyWindow touching it, or nil if the window is
// not known to be corrupt.
func (r *ContainerReader) WindowErr(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.winErr[i]
}

// BadWindows returns the indices of windows currently recorded as
// corrupt, in ascending order.
func (r *ContainerReader) BadWindows() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.winErr))
	for i := range r.winErr {
		out = append(out, i)
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// loadWindow reads and checksum-verifies window i's payload, recording
// the result for WindowErr.
func (r *ContainerReader) loadWindow(i int) ([]byte, error) {
	if i < 0 || i >= len(r.offsets) {
		return nil, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.offsets))
	}
	buf := make([]byte, r.lengths[i])
	if err := r.readAt(buf, r.offsets[i]); err != nil {
		return nil, fmt.Errorf("storage: reading window %d: %w", i, err)
	}
	if crc32.ChecksumIEEE(buf) != r.crcs[i] {
		err := fmt.Errorf("storage: window %d checksum mismatch: %w", i, ErrCorrupt)
		r.recordErr(i, err)
		return nil, err
	}
	r.recordErr(i, nil)
	return buf, nil
}

// VerifyWindow reads window i and checks its checksum without decoding
// it, recording the result for WindowErr/BadWindows. Degraded mounts run
// this over every window to map the damage before serving.
func (r *ContainerReader) VerifyWindow(i int) error {
	_, err := r.loadWindow(i)
	return err
}

// ReadWindow loads window i, verifying its checksum before decoding. The
// window is read from disk exactly once: checksumming and decoding both
// operate on the same in-memory buffer. Checksum failures wrap
// ErrCorrupt and are recorded for WindowErr.
func (r *ContainerReader) ReadWindow(i int) (*core.CompressedWindow, error) {
	return r.ReadWindowCtx(context.Background(), i)
}

// ReadWindowCtx is ReadWindow with context propagation: when ctx carries
// a trace, the read+verify+parse is captured as a "storage.read_window"
// span carrying the window index and payload size.
func (r *ContainerReader) ReadWindowCtx(ctx context.Context, i int) (*core.CompressedWindow, error) {
	_, sp := obs.Start(ctx, "storage.read_window")
	defer sp.End()
	sp.SetAttr("window", strconv.Itoa(i))
	buf, err := r.loadWindow(i)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("bytes", strconv.Itoa(len(buf)))
	if core.IsGapPayload(buf) {
		// Not corruption: the entry is a journaled gap marker. Callers
		// route on errors.Is(err, core.ErrGapWindow) and fetch the marker
		// with GapMarker(i) for timeline accounting.
		return nil, fmt.Errorf("storage: window %d: %w", i, core.ErrGapWindow)
	}
	cw, err := core.ReadCompressedWindow(bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("storage: reading window %d: %w", i, err)
	}
	return cw, nil
}

// GapMarker reads entry i as a gap marker. Entries holding a compressed
// window return an error wrapping core.ErrNotGap; use WindowInfo (whose
// Gap field is non-nil for gaps) to route without a second read.
func (r *ContainerReader) GapMarker(i int) (core.GapMarker, error) {
	buf, err := r.loadWindow(i)
	if err != nil {
		return core.GapMarker{}, err
	}
	g, err := core.ParseGapMarker(buf)
	if err != nil {
		return core.GapMarker{}, fmt.Errorf("storage: window %d: %w", i, err)
	}
	return g, nil
}

// WindowInfo parses only window i's fixed-size header: dims, slice count,
// mode. It reads 40 bytes regardless of window size, so scanning every
// window of a container to build a time index is cheap.
func (r *ContainerReader) WindowInfo(i int) (core.WindowInfo, error) {
	if i < 0 || i >= len(r.offsets) {
		return core.WindowInfo{}, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.offsets))
	}
	sec := io.NewSectionReader(r.f, r.offsets[i], r.lengths[i])
	wi, err := core.ReadWindowInfo(sec)
	if err != nil {
		return core.WindowInfo{}, fmt.Errorf("storage: window %d: %w", i, err)
	}
	return wi, nil
}

// Close closes the underlying file.
func (r *ContainerReader) Close() error { return r.f.Close() }

package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"stwave/internal/core"
)

// Container file format: a sequence of serialized compressed windows
// followed by a footer index enabling random access to any window (the
// capability the paper notes is otherwise lost with temporal compression).
// Each index entry carries a CRC32 of its window's bytes so silent
// corruption is detected at read time.
//
//	window 0 bytes
//	window 1 bytes
//	...
//	index: numWindows * (offset uint64, length uint64, crc32 uint32)
//	footer: numWindows uint64, magic "STWX"
var containerMagic = [4]byte{'S', 'T', 'W', 'X'}

const indexEntrySize = 20

// ContainerWriter appends compressed windows to a file.
type ContainerWriter struct {
	// Deflate, when set before the first Append, writes windows in the
	// DEFLATE-framed format (core format version 2): dramatically smaller
	// files at high ratios, at some CPU cost on write and read.
	Deflate bool

	f       *os.File
	offsets []int64
	lengths []int64
	crcs    []uint32
	pos     int64
	closed  bool
}

// CreateContainer opens a new container file for writing (truncating any
// existing file).
func CreateContainer(path string) (*ContainerWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &ContainerWriter{f: f}, nil
}

// Append writes one compressed window and returns its index.
func (w *ContainerWriter) Append(cw *core.CompressedWindow) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: container already closed")
	}
	crc := crc32.NewIEEE()
	dst := io.MultiWriter(w.f, crc)
	var n int64
	var err error
	if w.Deflate {
		n, err = cw.WriteToDeflated(dst)
	} else {
		n, err = cw.WriteTo(dst)
	}
	if err != nil {
		return 0, fmt.Errorf("storage: appending window: %w", err)
	}
	w.offsets = append(w.offsets, w.pos)
	w.lengths = append(w.lengths, n)
	w.crcs = append(w.crcs, crc.Sum32())
	w.pos += n
	return len(w.offsets) - 1, nil
}

// Close writes the index and footer and closes the file.
func (w *ContainerWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	buf := make([]byte, indexEntrySize*len(w.offsets)+12)
	for i := range w.offsets {
		binary.LittleEndian.PutUint64(buf[indexEntrySize*i:], uint64(w.offsets[i]))
		binary.LittleEndian.PutUint64(buf[indexEntrySize*i+8:], uint64(w.lengths[i]))
		binary.LittleEndian.PutUint32(buf[indexEntrySize*i+16:], w.crcs[i])
	}
	tail := buf[indexEntrySize*len(w.offsets):]
	binary.LittleEndian.PutUint64(tail[0:8], uint64(len(w.offsets)))
	copy(tail[8:12], containerMagic[:])
	if _, err := w.f.Write(buf); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ContainerReader provides random access to the windows of a container
// file.
type ContainerReader struct {
	f       *os.File
	offsets []int64
	lengths []int64
	crcs    []uint32
}

// OpenContainer opens a container file and reads its index.
func OpenContainer(path string) (*ContainerReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < 12 {
		f.Close()
		return nil, fmt.Errorf("storage: %s too small to be a container", path)
	}
	var tail [12]byte
	if _, err := f.ReadAt(tail[:], st.Size()-12); err != nil {
		f.Close()
		return nil, err
	}
	if [4]byte(tail[8:12]) != containerMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s has bad container magic", path)
	}
	num := int(binary.LittleEndian.Uint64(tail[0:8]))
	indexSize := int64(indexEntrySize*num + 12)
	if num < 0 || indexSize > st.Size() {
		f.Close()
		return nil, fmt.Errorf("storage: corrupt container index (%d windows)", num)
	}
	idx := make([]byte, indexEntrySize*num)
	if _, err := f.ReadAt(idx, st.Size()-indexSize); err != nil {
		f.Close()
		return nil, err
	}
	r := &ContainerReader{
		f:       f,
		offsets: make([]int64, num),
		lengths: make([]int64, num),
		crcs:    make([]uint32, num),
	}
	for i := 0; i < num; i++ {
		r.offsets[i] = int64(binary.LittleEndian.Uint64(idx[indexEntrySize*i:]))
		r.lengths[i] = int64(binary.LittleEndian.Uint64(idx[indexEntrySize*i+8:]))
		r.crcs[i] = binary.LittleEndian.Uint32(idx[indexEntrySize*i+16:])
	}
	return r, nil
}

// NumWindows returns the number of windows in the container.
func (r *ContainerReader) NumWindows() int { return len(r.offsets) }

// WindowSizeBytes returns the serialized size of window i.
func (r *ContainerReader) WindowSizeBytes(i int) (int64, error) {
	if i < 0 || i >= len(r.lengths) {
		return 0, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.lengths))
	}
	return r.lengths[i], nil
}

// ReadWindow loads window i, verifying its checksum before decoding. The
// window is read from disk exactly once: checksumming and decoding both
// operate on the same in-memory buffer. ReadWindow is safe for concurrent
// use by multiple goroutines — all file access goes through ReadAt, which
// carries no shared cursor.
func (r *ContainerReader) ReadWindow(i int) (*core.CompressedWindow, error) {
	if i < 0 || i >= len(r.offsets) {
		return nil, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.offsets))
	}
	buf := make([]byte, r.lengths[i])
	if _, err := r.f.ReadAt(buf, r.offsets[i]); err != nil {
		return nil, fmt.Errorf("storage: reading window %d: %w", i, err)
	}
	if crc32.ChecksumIEEE(buf) != r.crcs[i] {
		return nil, fmt.Errorf("storage: window %d checksum mismatch (file corrupted)", i)
	}
	cw, err := core.ReadCompressedWindow(bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("storage: reading window %d: %w", i, err)
	}
	return cw, nil
}

// WindowInfo parses only window i's fixed-size header: dims, slice count,
// mode. It reads 40 bytes regardless of window size, so scanning every
// window of a container to build a time index is cheap.
func (r *ContainerReader) WindowInfo(i int) (core.WindowInfo, error) {
	if i < 0 || i >= len(r.offsets) {
		return core.WindowInfo{}, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.offsets))
	}
	sec := io.NewSectionReader(r.f, r.offsets[i], r.lengths[i])
	wi, err := core.ReadWindowInfo(sec)
	if err != nil {
		return core.WindowInfo{}, fmt.Errorf("storage: window %d: %w", i, err)
	}
	return wi, nil
}

// Close closes the underlying file.
func (r *ContainerReader) Close() error { return r.f.Close() }

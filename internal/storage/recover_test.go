package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stwave/internal/codec"
	"stwave/internal/core"
	"stwave/internal/faultio"
	"stwave/internal/grid"
)

// fastRetry is a retry policy with negligible real sleeping for tests.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

// buildFramed writes a v3 container of numWindows windows at path and
// returns each window's exact serialized payload bytes, for bit-identical
// comparison after recovery.
func buildFramed(t testing.TB, path string, numWindows int) [][]byte {
	t.Helper()
	return buildFramedCodec(t, path, numWindows, nil)
}

// buildFramedCodec is buildFramed with an explicit coefficient backend
// (nil means the default sparse codec).
func buildFramedCodec(t testing.TB, path string, numWindows int, cdc codec.Codec) [][]byte {
	t.Helper()
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	opts := core.DefaultOptions()
	opts.WindowSize = 4
	opts.Ratio = 8
	opts.Codec = cdc
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 0, numWindows)
	for wi := 0; wi < numWindows; wi++ {
		win := grid.NewWindow(d)
		for ts := 0; ts < 4; ts++ {
			f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
			for i := range f.Data {
				f.Data[i] = float64(wi*1000+ts) + float64(i%17)*0.25
			}
			if err := win.Append(f, float64(wi*4+ts)); err != nil {
				t.Fatal(err)
			}
		}
		cw, err := comp.CompressWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := cw.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, bytes.Clone(buf.Bytes()))
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

// recordBoundaries returns the byte offset of the end of each record:
// boundaries[k] is where record k ends (and record k+1 begins), with
// boundaries[0] == 0 meaning "before any record".
func recordBoundaries(payloads [][]byte) []int64 {
	b := []int64{0}
	pos := int64(0)
	for _, p := range payloads {
		pos += core.RecordHeaderSize + int64(len(p))
		b = append(b, pos)
	}
	return b
}

// truncatedCopy copies src into dir truncated to size bytes.
func truncatedCopy(t *testing.T, src string, size int64, name string) string {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if size > int64(len(raw)) {
		t.Fatalf("truncation size %d beyond file size %d", size, len(raw))
	}
	dst := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(dst, raw[:size], 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// checkRecovered recovers path and asserts it yields exactly
// payloads[:want], bit-identical to the originals.
func checkRecovered(t *testing.T, path string, payloads [][]byte, want int) {
	t.Helper()
	if want == 0 {
		if _, err := RecoverContainer(path); err == nil {
			t.Fatalf("recovering a container with zero durable frames should fail")
		}
		return
	}
	rep, err := RecoverContainer(path)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Good != want || len(rep.Corrupt) != 0 {
		t.Fatalf("recover report: %d good, %v corrupt; want %d good", rep.Good, rep.Corrupt, want)
	}
	r, err := OpenContainer(path)
	if err != nil {
		t.Fatalf("open after recover: %v", err)
	}
	defer r.Close()
	if r.NumWindows() != want {
		t.Fatalf("recovered %d windows, want %d", r.NumWindows(), want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want; i++ {
		got := raw[r.offsets[i] : r.offsets[i]+r.lengths[i]]
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("window %d payload not bit-identical after recovery", i)
		}
		if _, err := r.ReadWindow(i); err != nil {
			t.Fatalf("reading recovered window %d: %v", i, err)
		}
	}
}

// TestRecoveryMatrix is the ISSUE acceptance matrix: a 6-window
// container truncated at every record boundary and at mid-record
// offsets must recover exactly the windows whose frames are fully on
// disk, bit-identical to the originals.
func TestRecoveryMatrix(t *testing.T) {
	src := filepath.Join(t.TempDir(), "full.stw")
	payloads := buildFramed(t, src, 6)
	bounds := recordBoundaries(payloads)

	// Truncate at every record boundary: exactly k windows survive.
	for k := 0; k <= 6; k++ {
		t.Run(fmt.Sprintf("boundary-%d", k), func(t *testing.T) {
			path := truncatedCopy(t, src, bounds[k], "trunc.stw")
			checkRecovered(t, path, payloads, k)
		})
	}

	// Mid-record truncations: the torn record is dropped, everything
	// before it survives.
	midCuts := []struct {
		name string
		size int64
		want int
	}{
		{"mid-header", bounds[2] + 10, 2},                           // 10 bytes into record 2's frame header
		{"early-payload", bounds[3] + core.RecordHeaderSize + 7, 3}, // 7 bytes into record 3's payload
		{"late-payload", bounds[5] - 1, 4},                          // one byte short of record 4's end
		{"mid-payload", bounds[1] + core.RecordHeaderSize + int64(len(payloads[1]))/2, 1},
	}
	for _, tc := range midCuts {
		t.Run(tc.name, func(t *testing.T) {
			path := truncatedCopy(t, src, tc.size, "torn.stw")
			checkRecovered(t, path, payloads, tc.want)
		})
	}

	// Truncation inside the footer index: all 6 windows survive.
	st, err := os.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("mid-index", func(t *testing.T) {
		path := truncatedCopy(t, src, st.Size()-5, "noindex.stw")
		if _, err := OpenContainer(path); err == nil {
			t.Fatal("torn footer should not open")
		}
		checkRecovered(t, path, payloads, 6)
	})
}

// TestRecoveryMatrixEntropy is the entropy-container row of the
// recovery matrix: torn-tail recovery and payload-corruption detection
// behave identically for entropy-coded windows, and the scan report
// classifies the frames by codec.
func TestRecoveryMatrixEntropy(t *testing.T) {
	src := filepath.Join(t.TempDir(), "entropy.stw")
	payloads := buildFramedCodec(t, src, 6, codec.Entropy())
	bounds := recordBoundaries(payloads)

	t.Run("mid-payload-truncation", func(t *testing.T) {
		// Tear 7 bytes into record 3's payload: windows 0..2 survive
		// bit-identical and decode through the entropy backend.
		path := truncatedCopy(t, src, bounds[3]+core.RecordHeaderSize+7, "torn.stw")
		checkRecovered(t, path, payloads, 3)
	})

	t.Run("payload-bit-flip", func(t *testing.T) {
		path := truncatedCopy(t, src, bounds[6], "flip.stw")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[bounds[2]+core.RecordHeaderSize+int64(len(payloads[2]))/2] ^= 0x01
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := f.Stat()
		rep, err := ScanContainer(f, st.Size())
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Good != 5 || len(rep.Corrupt) != 1 || rep.Corrupt[0] != 2 {
			t.Fatalf("scan: %d good, corrupt %v; want 5 good, corrupt [2]", rep.Good, rep.Corrupt)
		}
		// The scan classifies the frames by codec; the corrupt window's
		// header is intact, so it too reports as entropy.
		for i, fr := range rep.Frames {
			if fr.Codec != "entropy" {
				t.Errorf("frame %d codec %q, want entropy", i, fr.Codec)
			}
		}
	})
}

// TestRecoverySectionCorruption corrupts each section of a container —
// payload, index, footer — and checks detection and repair behaviour.
func TestRecoverySectionCorruption(t *testing.T) {
	newContainer := func(t *testing.T) (string, [][]byte) {
		path := filepath.Join(t.TempDir(), "c.stw")
		return path, buildFramed(t, path, 6)
	}
	flip := func(t *testing.T, path string, off int64) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[off] ^= 0x01
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("payload-bit-flip", func(t *testing.T) {
		path, payloads := newContainer(t)
		bounds := recordBoundaries(payloads)
		// Flip a bit in the middle of window 2's payload. The footer still
		// matches the journal (frame CRCs are unchanged), so the scan flags
		// the window without needing a repair, and degraded readers can
		// still reach the other five windows.
		flip(t, path, bounds[2]+core.RecordHeaderSize+int64(len(payloads[2]))/2)
		rep, err := RecoverContainer(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep.NeedsRepair() {
			t.Error("payload corruption alone should not dirty the footer")
		}
		if rep.Good != 5 || len(rep.Corrupt) != 1 || rep.Corrupt[0] != 2 {
			t.Fatalf("report: %d good, corrupt %v; want 5 good, corrupt [2]", rep.Good, rep.Corrupt)
		}
		r, err := OpenContainer(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.ReadWindow(2); !errors.Is(err, ErrCorrupt) {
			t.Errorf("ReadWindow(2) = %v, want ErrCorrupt", err)
		}
		if err := r.WindowErr(2); err == nil {
			t.Error("WindowErr(2) not recorded")
		}
		if bad := r.BadWindows(); len(bad) != 1 || bad[0] != 2 {
			t.Errorf("BadWindows = %v", bad)
		}
		for _, i := range []int{0, 1, 3, 4, 5} {
			if _, err := r.ReadWindow(i); err != nil {
				t.Errorf("intact window %d unreadable: %v", i, err)
			}
		}
	})

	t.Run("index-bit-flip", func(t *testing.T) {
		path, payloads := newContainer(t)
		bounds := recordBoundaries(payloads)
		// Corrupt an offset in the footer index. Either open-time index
		// validation rejects it or the CRC catches the misdirected read;
		// in both cases repair rebuilds a working index from the journal.
		flip(t, path, bounds[6]+3)
		if r, err := OpenContainer(path); err == nil {
			nBad := 0
			for i := 0; i < r.NumWindows(); i++ {
				if _, err := r.ReadWindow(i); err != nil {
					nBad++
				}
			}
			r.Close()
			if nBad == 0 {
				t.Fatal("corrupt index neither rejected nor detected")
			}
		}
		checkRecovered(t, path, payloads, 6)
	})

	t.Run("footer-magic-flip", func(t *testing.T) {
		path, payloads := newContainer(t)
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		flip(t, path, st.Size()-1) // inside the magic
		if _, err := OpenContainer(path); err == nil {
			t.Fatal("bad footer magic should not open")
		}
		checkRecovered(t, path, payloads, 6)
	})

	t.Run("repair-idempotent", func(t *testing.T) {
		path, payloads := newContainer(t)
		bounds := recordBoundaries(payloads)
		p := truncatedCopy(t, path, bounds[4]+11, "t.stw")
		checkRecovered(t, p, payloads, 4)
		rep, err := RecoverContainer(p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.NeedsRepair() {
			t.Error("second recovery should be a no-op")
		}
		checkRecovered(t, p, payloads, 4)
	})
}

// TestRecoverBadFrameHeader is the reviewer's reproduction: one flipped
// bit in a mid-journal frame header must not cost the later windows. The
// scan resyncs from the still-valid footer, repair rewrites the damaged
// header in place, and all windows stay readable — no truncation.
func TestRecoverBadFrameHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "badhdr.stw")
	payloads := buildFramed(t, path, 4)
	bounds := recordBoundaries(payloads)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	origSize := int64(len(raw))
	raw[bounds[1]+1] ^= 0x01 // inside window 1's frame header magic
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The scan must see past the bad header via the footer: all 4 windows
	// located, one damaged header, footer consistent, repair needed.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ScanContainer(f, origSize)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Good != 4 || len(rep.Corrupt) != 0 || !rep.FooterOK {
		t.Fatalf("scan: %d good, corrupt %v, footerOK %v; want 4 good via footer resync", rep.Good, rep.Corrupt, rep.FooterOK)
	}
	if len(rep.BadHeaders) != 1 || rep.BadHeaders[0] != 1 || rep.Frames[1].State != FrameBadHeader {
		t.Fatalf("scan: bad headers %v, frame 1 state %v; want [1], bad-header", rep.BadHeaders, rep.Frames[1].State)
	}
	if !rep.NeedsRepair() {
		t.Fatal("damaged journal header must need repair")
	}

	// Repair rewrites the header; every window survives bit-identical.
	checkRecovered(t, path, payloads, 4)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != origSize {
		t.Errorf("repair changed file size %d -> %d; header rewrite must not truncate", origSize, st.Size())
	}
	if _, err := os.Stat(path + ".tail.bak"); !os.IsNotExist(err) {
		t.Error("header rewrite created a tail backup; nothing was dropped")
	}

	// The journal itself is whole again: a rescan is clean.
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = ScanContainer(f, st.Size())
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NeedsRepair() || len(rep.BadHeaders) != 0 {
		t.Errorf("post-repair scan: needsRepair=%v badHeaders=%v", rep.NeedsRepair(), rep.BadHeaders)
	}
}

// TestRecoverRefusesDestructiveTruncation: when the journal scan stops
// early AND the footer cannot be validated, repair must not silently
// truncate the windows the footer still claims — it refuses without
// Force, and with Force it backs the dropped tail up first.
func TestRecoverRefusesDestructiveTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "force.stw")
	payloads := buildFramed(t, path, 4)
	bounds := recordBoundaries(payloads)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	origSize := int64(len(raw))
	raw[bounds[2]+1] ^= 0x01                  // window 2's frame header: scan stops here
	raw[bounds[4]+3*indexEntrySize+2] ^= 0x01 // footer entry 3's offset: resync impossible
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := RecoverContainer(path); err == nil {
		t.Fatal("repair must refuse to truncate data an unvalidatable footer still claims")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != origSize {
		t.Fatalf("refused repair still modified the file: %d -> %d bytes", origSize, st.Size())
	}

	// Forced: the durable prefix is recovered and the dropped tail is
	// backed up byte-for-byte.
	rep, err := RecoverContainerOpts(path, RecoverOptions{Force: true})
	if err != nil {
		t.Fatalf("forced recover: %v", err)
	}
	if rep.Good != 2 {
		t.Fatalf("forced recover found %d good windows, want 2", rep.Good)
	}
	bak, err := os.ReadFile(path + ".tail.bak")
	if err != nil {
		t.Fatalf("tail backup missing: %v", err)
	}
	if !bytes.Equal(bak, raw[bounds[2]:]) {
		t.Errorf("tail backup is not the dropped bytes (%d bytes, want %d)", len(bak), origSize-bounds[2])
	}
	checkRecovered(t, path, payloads, 2)
}

// TestScanRetriesTransientReads: the scan path retries transient read
// errors like the read and write paths do, and propagates persistent
// read errors instead of misclassifying healthy frames as corrupt.
func TestScanRetriesTransientReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scanretry.stw")
	buildFramed(t, path, 2)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	ff := faultio.Wrap(f)

	ff.FailReads(2)
	rep, err := ScanContainer(ff, st.Size())
	if err != nil {
		t.Fatalf("scan with transient read errors: %v", err)
	}
	if rep.Good != 2 || len(rep.Corrupt) != 0 {
		t.Errorf("scan under transient errors: %d good, corrupt %v; want 2 good", rep.Good, rep.Corrupt)
	}

	ff.FailReads(50)
	if _, err := ScanContainer(ff, st.Size()); err == nil {
		t.Fatal("persistent read errors must propagate, not classify frames corrupt")
	}
}

// TestScanLegacyContainer: v2 containers (no frames) are recognized,
// verified against their index, and refused for repair.
func TestScanLegacyContainer(t *testing.T) {
	src := filepath.Join(t.TempDir(), "v3.stw")
	payloads := buildFramed(t, src, 3)

	// Assemble a legacy v2 image: bare payloads, index, "STWX" footer.
	var img bytes.Buffer
	offsets := make([]int64, len(payloads))
	pos := int64(0)
	for i, p := range payloads {
		offsets[i] = pos
		img.Write(p)
		pos += int64(len(p))
	}
	idx := make([]byte, indexEntrySize*len(payloads)+footerSize)
	for i, p := range payloads {
		binary.LittleEndian.PutUint64(idx[indexEntrySize*i:], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(idx[indexEntrySize*i+8:], uint64(len(p)))
		binary.LittleEndian.PutUint32(idx[indexEntrySize*i+16:], crc32.ChecksumIEEE(p))
	}
	tail := idx[indexEntrySize*len(payloads):]
	binary.LittleEndian.PutUint64(tail[0:8], uint64(len(payloads)))
	copy(tail[8:12], containerMagicV2[:])
	img.Write(idx)
	path := filepath.Join(t.TempDir(), "v2.stw")
	if err := os.WriteFile(path, img.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenContainer(path)
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	if r.framed {
		t.Error("v2 container misdetected as framed")
	}
	for i := range payloads {
		if _, err := r.ReadWindow(i); err != nil {
			t.Errorf("legacy window %d: %v", i, err)
		}
	}
	r.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	rep, err := ScanContainer(f, st.Size())
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Legacy || rep.Good != 3 || rep.NeedsRepair() {
		t.Errorf("legacy scan: legacy=%v good=%d needsRepair=%v", rep.Legacy, rep.Good, rep.NeedsRepair())
	}
	if _, err := RecoverContainer(path); err == nil {
		t.Error("repairing a legacy container must be refused")
	}
}

// TestIndexValidation: OpenContainer must reject indices whose entries
// are out of range or overlapping, instead of failing later with a
// confusing read error.
func TestIndexValidation(t *testing.T) {
	src := filepath.Join(t.TempDir(), "v.stw")
	payloads := buildFramed(t, src, 3)
	bounds := recordBoundaries(payloads)
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	idxStart := bounds[3]

	mutate := func(t *testing.T, name string, f func(img []byte)) {
		t.Helper()
		img := bytes.Clone(raw)
		f(img)
		path := filepath.Join(t.TempDir(), "bad.stw")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenContainer(path); err == nil {
			t.Errorf("%s: corrupt index accepted", name)
		}
	}

	mutate(t, "offset-overlaps-previous", func(img []byte) {
		// Point entry 1 at entry 0's payload.
		copy(img[idxStart+indexEntrySize:], img[idxStart:idxStart+8])
	})
	mutate(t, "length-past-data-region", func(img []byte) {
		binary.LittleEndian.PutUint64(img[idxStart+8:], uint64(len(img)))
	})
	mutate(t, "negative-offset", func(img []byte) {
		binary.LittleEndian.PutUint64(img[idxStart+indexEntrySize:], ^uint64(0)-7)
	})
	mutate(t, "offset-inside-frame-header", func(img []byte) {
		// Payload offsets in a framed container must leave room for the
		// 20-byte frame header before them.
		binary.LittleEndian.PutUint64(img[idxStart:], 5)
	})
	mutate(t, "huge-window-count", func(img []byte) {
		binary.LittleEndian.PutUint64(img[len(img)-12:], ^uint64(0)/2)
	})
}

// TestFaultInjectionWritePath drives the writer through the faultio
// harness: transient errors retry, torn and short writes sticky-fail.
func TestFaultInjectionWritePath(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	opts := core.DefaultOptions()
	opts.WindowSize = 3
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(testWindow(d, 3))
	if err != nil {
		t.Fatal(err)
	}

	newWriter := func(t *testing.T) (*ContainerWriter, *faultio.File, string) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "f.stw")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ff := faultio.Wrap(f)
		w := NewContainerWriter(ff)
		w.Retry = fastRetry(3)
		return w, ff, path
	}

	t.Run("transient-write-retries", func(t *testing.T) {
		w, ff, path := newWriter(t)
		ff.FailWrites(2) // two transient failures, third attempt lands
		if _, err := w.Append(cw); err != nil {
			t.Fatalf("append with retries: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenContainer(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.ReadWindow(0); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("transient-exhaustion-is-sticky", func(t *testing.T) {
		w, ff, _ := newWriter(t)
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		ff.FailWrites(10) // more failures than attempts
		_, err := w.Append(cw)
		if err == nil {
			t.Fatal("append should fail after retry exhaustion")
		}
		if _, err2 := w.Append(cw); !errors.Is(err2, err) && err2.Error() != err.Error() {
			t.Errorf("second append after failure: %v, want sticky %v", err2, err)
		}
		if cerr := w.Close(); cerr == nil {
			t.Error("close after sticky append error must fail")
		}
	})

	t.Run("torn-write-recovers-durable-prefix", func(t *testing.T) {
		w, ff, path := newWriter(t)
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		end1 := w.pos
		ff.TearAt(end1 + 31) // tear 31 bytes into window 1's record
		if _, err := w.Append(cw); err == nil {
			t.Fatal("torn append should fail")
		}
		w.Close() // returns the sticky error; file keeps the journal
		checkRecoveredCount(t, path, 1)
	})

	t.Run("short-write-recovers-durable-prefix", func(t *testing.T) {
		w, ff, path := newWriter(t)
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		ff.ShortWrite(13)
		if _, err := w.Append(cw); err == nil {
			t.Fatal("short write should fail")
		}
		w.Close()
		checkRecoveredCount(t, path, 2)
	})

	t.Run("sync-failure-is-sticky", func(t *testing.T) {
		w, ff, _ := newWriter(t)
		w.Sync = SyncPerWindow
		w.Retry = fastRetry(1)
		ff.FailSyncs(1)
		if _, err := w.Append(cw); err == nil {
			t.Fatal("append with failing fsync should fail under SyncPerWindow")
		}
		if _, err := w.Append(cw); err == nil {
			t.Fatal("sticky error expected")
		}
	})

	t.Run("sync-failure-drops-unacked-record", func(t *testing.T) {
		w, ff, path := newWriter(t)
		w.Sync = SyncPerWindow
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		ff.FailSyncs(10) // exhausts the retries
		if _, err := w.Append(cw); err == nil {
			t.Fatal("append with failing fsync should fail under SyncPerWindow")
		}
		w.Close()
		// The second record was fully written before the fsync failed, but
		// the caller was told the append failed and may rewrite the window
		// into a new container — recovery must not resurrect it.
		checkRecoveredCount(t, path, 1)
	})
}

// checkRecoveredCount recovers path and asserts the window count.
func checkRecoveredCount(t *testing.T, path string, want int) {
	t.Helper()
	if _, err := RecoverContainer(path); err != nil {
		t.Fatalf("recover: %v", err)
	}
	r, err := OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumWindows() != want {
		t.Fatalf("recovered %d windows, want %d", r.NumWindows(), want)
	}
	for i := 0; i < want; i++ {
		if _, err := r.ReadWindow(i); err != nil {
			t.Errorf("window %d: %v", i, err)
		}
	}
}

// TestFaultInjectionReadPath: transient read errors are retried; bit
// flips injected on the read path surface as ErrCorrupt.
func TestFaultInjectionReadPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.stw")
	buildFramed(t, path, 2)
	open := func(t *testing.T) (*ContainerReader, *faultio.File) {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		ff := faultio.Wrap(f)
		r, err := NewContainerReader(ff, st.Size())
		if err != nil {
			t.Fatal(err)
		}
		r.Retry = fastRetry(3)
		return r, ff
	}

	t.Run("transient-read-retries", func(t *testing.T) {
		r, ff := open(t)
		defer r.Close()
		ff.FailReads(2)
		if _, err := r.ReadWindow(0); err != nil {
			t.Fatalf("read with retries: %v", err)
		}
	})

	t.Run("transient-exhaustion-fails", func(t *testing.T) {
		r, ff := open(t)
		defer r.Close()
		ff.FailReads(10)
		if _, err := r.ReadWindow(0); err == nil {
			t.Fatal("read should fail after retry exhaustion")
		}
		// Not a corruption: the bytes were never seen.
		if err := r.WindowErr(0); err != nil {
			t.Errorf("transient failure recorded as corruption: %v", err)
		}
	})

	t.Run("read-bit-flip-detected", func(t *testing.T) {
		r, ff := open(t)
		defer r.Close()
		ff.FlipBitAt(r.offsets[1] + 50)
		if _, err := r.ReadWindow(1); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped read = %v, want ErrCorrupt", err)
		}
		if r.WindowErr(1) == nil {
			t.Error("corruption not recorded")
		}
		// Window 0 is untouched.
		if _, err := r.ReadWindow(0); err != nil {
			t.Errorf("intact window: %v", err)
		}
	})
}

// TestSyncPolicies counts fsync calls per policy through the harness.
func TestSyncPolicies(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	opts := core.DefaultOptions()
	opts.WindowSize = 2
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(testWindow(d, 2))
	if err != nil {
		t.Fatal(err)
	}
	syncsFor := func(t *testing.T, pol SyncPolicy) int {
		t.Helper()
		f, err := os.Create(filepath.Join(t.TempDir(), "s.stw"))
		if err != nil {
			t.Fatal(err)
		}
		ff := faultio.Wrap(f)
		w := NewContainerWriter(ff)
		w.Sync = pol
		for i := 0; i < 3; i++ {
			if _, err := w.Append(cw); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, _, syncs := ff.Counts()
		return syncs
	}
	if n := syncsFor(t, SyncNever); n != 0 {
		t.Errorf("SyncNever issued %d fsyncs", n)
	}
	// Per-window: one per append, plus the data+index syncs in Close.
	if n := syncsFor(t, SyncPerWindow); n != 5 {
		t.Errorf("SyncPerWindow issued %d fsyncs, want 5", n)
	}
	if n := syncsFor(t, SyncOnClose); n != 2 {
		t.Errorf("SyncOnClose issued %d fsyncs, want 2", n)
	}
}

// TestAtomicClose: the final path only ever holds a complete container.
func TestAtomicClose(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	opts := core.DefaultOptions()
	opts.WindowSize = 2
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(testWindow(d, 2))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("success", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "a.stw")
		w, err := CreateContainerAtomic(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Error("final path exists before Close")
		}
		if _, err := os.Stat(path + ".tmp"); err != nil {
			t.Errorf("staging file missing during write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Error("staging file left behind after Close")
		}
		r, err := OpenContainer(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if r.NumWindows() != 1 {
			t.Errorf("NumWindows = %d", r.NumWindows())
		}
	})

	t.Run("failed-append-removes-staging", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "b.stw")
		w, err := CreateContainerAtomic(path)
		if err != nil {
			t.Fatal(err)
		}
		w.Retry = fastRetry(1)
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
		// Force a sticky error by closing the underlying file behind the
		// writer's back: the next append fails hard.
		w.f.Close()
		if _, err := w.Append(cw); err == nil {
			t.Fatal("append to closed file should fail")
		}
		if err := w.Close(); err == nil {
			t.Fatal("close after sticky error should fail")
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Error("final path exists after failed atomic write")
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Error("staging file left behind after failed atomic write")
		}
	})
}

// TestRetryPolicy exercises the backoff loop directly.
func TestRetryPolicy(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{Attempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond,
		sleep: func(d time.Duration) { slept = append(slept, d) }}

	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("wrapped: %w", errTransientTest{})
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls", err, calls)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoff schedule %v", slept)
	}

	// Backoff caps at MaxDelay.
	slept = nil
	calls = 0
	p.Do(func() error { calls++; return errTransientTest{} })
	if calls != 4 {
		t.Errorf("exhaustion ran %d attempts, want 4", calls)
	}
	if len(slept) != 3 || slept[2] != 25*time.Millisecond {
		t.Errorf("capped schedule %v", slept)
	}

	// Permanent errors do not retry.
	calls = 0
	perm := errors.New("permanent")
	if err := p.Do(func() error { calls++; return perm }); !errors.Is(err, perm) || calls != 1 {
		t.Errorf("permanent error retried: %v after %d calls", err, calls)
	}

	// Zero policy never retries.
	calls = 0
	RetryPolicy{}.Do(func() error { calls++; return errTransientTest{} })
	if calls != 1 {
		t.Errorf("zero policy ran %d attempts", calls)
	}
}

type errTransientTest struct{}

func (errTransientTest) Error() string   { return "transient test error" }
func (errTransientTest) Transient() bool { return true }

package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"

	"stwave/internal/core"
	"stwave/internal/obs"
)

// Partial window reads. A v4 progressive window's payload is grouped by
// detail level behind a level-offset table (core/progressive.go), so
// serving a coarse reconstruction only needs the byte prefix covering
// level groups 0..K — the finer groups are never read from disk, never
// checksummed, never decompressed. That prefix-read is what turns the
// level-major layout into an I/O saving rather than a mere reshuffle:
// for a typical window the approximation group is a few percent of the
// payload, so a level-0 preview costs a few percent of the bytes.
//
// Integrity: the footer index CRC covers the whole payload and cannot
// verify a prefix, so partial reads rely on the format's own per-group
// CRCs instead — every group that is read is verified, and the header
// and level table fail typed on any structural damage. A partial read
// therefore never updates WindowErr (it has not proven the whole window
// good or bad), except when the level table itself is unreadable.

// ReadWindowLevels reads the minimal byte prefix of window i needed to
// reconstruct detail levels 0..maxLevel and parses it into a
// CompressedWindow holding only those level groups (decode it with
// core.DecompressLevels). The second return is the number of payload
// bytes actually read — callers surface it so the bytes-saved accounting
// in /metrics is honest. Windows written in the legacy slice-major
// layout return core.ErrNotProgressive; callers fall back to ReadWindow.
func (r *ContainerReader) ReadWindowLevels(i, maxLevel int) (*core.CompressedWindow, int64, error) {
	return r.ReadWindowLevelsCtx(context.Background(), i, maxLevel)
}

// ReadWindowLevelsCtx is ReadWindowLevels with context propagation: the
// read+parse is captured as a "storage.read_window_levels" span carrying
// the window index, requested level, and bytes read vs. total.
func (r *ContainerReader) ReadWindowLevelsCtx(ctx context.Context, i, maxLevel int) (*core.CompressedWindow, int64, error) {
	_, sp := obs.Start(ctx, "storage.read_window_levels")
	defer sp.End()
	sp.SetAttr("window", strconv.Itoa(i))
	sp.SetAttr("level", strconv.Itoa(maxLevel))
	_, table, payloadStart, err := r.WindowLevelTable(i)
	if err != nil {
		return nil, 0, err
	}
	if maxLevel < 0 || maxLevel >= len(table.Extents) {
		return nil, 0, fmt.Errorf("storage: window %d: level %d out of range [0,%d)", i, maxLevel, len(table.Extents))
	}
	prefix := payloadStart + table.PrefixBytes(maxLevel)
	if prefix > r.lengths[i] {
		err := fmt.Errorf("storage: window %d: level table claims %d bytes for levels 0..%d, payload is %d: %w",
			i, prefix, maxLevel, r.lengths[i], ErrCorrupt)
		r.recordErr(i, err)
		return nil, 0, err
	}
	buf := make([]byte, prefix)
	if err := r.readAt(buf, r.offsets[i]); err != nil {
		return nil, 0, fmt.Errorf("storage: reading window %d levels 0..%d: %w", i, maxLevel, err)
	}
	cw, err := core.ReadCompressedWindowLevels(bytes.NewReader(buf), maxLevel)
	if err != nil {
		return nil, prefix, fmt.Errorf("storage: reading window %d levels 0..%d: %w", i, maxLevel, err)
	}
	sp.SetAttr("bytes", strconv.FormatInt(prefix, 10))
	obs.Default().Counter("storage.partial_reads_total").Add(1)
	obs.Default().Counter("storage.partial_bytes_saved_total").Add(r.lengths[i] - prefix)
	return cw, prefix, nil
}

// WindowLevelTable parses window i's header and level-offset table
// without touching the coefficient payload. The third return is the
// offset of the payload (the first level group's first byte) within the
// window, so PrefixBytes arithmetic maps levels to absolute byte ranges
// for HTTP Range requests against WindowSection. Legacy windows return
// core.ErrNotProgressive.
func (r *ContainerReader) WindowLevelTable(i int) (core.WindowInfo, core.LevelTable, int64, error) {
	if i < 0 || i >= len(r.offsets) {
		return core.WindowInfo{}, core.LevelTable{}, 0, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.offsets))
	}
	sec := io.NewSectionReader(r.f, r.offsets[i], r.lengths[i])
	wi, table, payloadStart, err := core.ReadWindowLevelTable(sec)
	if err != nil {
		if errors.Is(err, core.ErrNotProgressive) || errors.Is(err, core.ErrGapWindow) {
			return core.WindowInfo{}, core.LevelTable{}, 0, fmt.Errorf("storage: window %d: %w", i, err)
		}
		return core.WindowInfo{}, core.LevelTable{}, 0, fmt.Errorf("storage: window %d level table: %w", i, err)
	}
	if total := payloadStart + table.PrefixBytes(len(table.Extents)-1); total != r.lengths[i] {
		err := fmt.Errorf("storage: window %d: level table covers %d bytes, index says %d: %w",
			i, total, r.lengths[i], ErrCorrupt)
		r.recordErr(i, err)
		return core.WindowInfo{}, core.LevelTable{}, 0, err
	}
	return wi, table, payloadStart, nil
}

// WindowSection returns a ReadSeeker over window i's serialized bytes
// (header, times, level table, payload — exactly what WriteTo produced).
// It is the raw-byte surface behind the server's Range endpoint: a
// client that has fetched the level table can issue byte-range requests
// for individual level groups and verify them against the table's
// per-group CRCs. The section shares the container's file handle; it is
// valid until the reader is closed.
func (r *ContainerReader) WindowSection(i int) (*io.SectionReader, error) {
	if i < 0 || i >= len(r.offsets) {
		return nil, fmt.Errorf("storage: window %d out of range [0,%d)", i, len(r.offsets))
	}
	return io.NewSectionReader(r.f, r.offsets[i], r.lengths[i]), nil
}

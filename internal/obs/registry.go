package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil Counter ignores Add and reports zero.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any registry
// (attach it later with Registry.RegisterCounter).
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n. No-op when n is counted on a nil
// counter or recording is disabled.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a float64 that can move in both directions (occupancy,
// ratios). The zero value is ready to use; a nil Gauge ignores Set.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the gauge's current value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: bucket i counts observations v with
// 2^(histMinExp+i-1) < v <= 2^(histMinExp+i), so upper bounds are fixed,
// log-spaced powers of two. With histMinExp = -30 and 64 buckets the
// range spans ~1e-9 .. ~8.6e9 in the observed unit — for seconds, one
// nanosecond to centuries; for MB/s, any realistic throughput. Values at
// or below the smallest bound land in bucket 0; values beyond the
// largest land in the last bucket.
const (
	histMinExp  = -30
	histNumBkts = 64
)

// A Histogram records float64 observations into fixed log-spaced
// (power-of-two) buckets. Fixed buckets keep Observe lock-free and
// allocation-free (one math.Frexp and two atomic adds), make histograms
// mergeable across processes and runs, and bound the relative
// quantile-estimation error to at most 2x — adequate for latency work
// where the interesting differences are order-of-magnitude. The zero
// value is ready to use; a nil Histogram ignores Observe.
type Histogram struct {
	counts [histNumBkts]atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a standalone histogram not attached to any
// registry (attach it later with Registry.RegisterHistogram).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps an observation to its bucket. Non-positive and NaN
// observations land in bucket 0 (they have no magnitude to resolve).
func bucketIndex(v float64) int {
	if !(v > 0) { // NaN and non-positive values both fail v > 0
		return 0
	}
	// Frexp gives v = frac * 2^exp with frac in [0.5, 1), so
	// 2^(exp-1) <= v < 2^exp and v's bucket upper bound is 2^exp —
	// except exact powers of two (frac exactly 0.5), which sit on their
	// own bucket's inclusive upper edge.
	frac, exp := math.Frexp(v)
	if math.Float64bits(frac) == math.Float64bits(0.5) {
		exp--
	}
	i := exp - histMinExp
	if i < 0 {
		return 0
	}
	if i >= histNumBkts {
		return histNumBkts - 1
	}
	return i
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start — the idiomatic
// deferred form: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// HistogramBucket is one non-empty bucket of a snapshot: Count samples
// were observed at values <= UpperBound (and above the previous bucket's
// bound).
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper edge, a power of two in
	// the observed unit.
	UpperBound float64 `json:"le"`
	// Count is the number of samples in this bucket (non-cumulative).
	Count int64 `json:"n"`
}

// HistogramSnapshot is the JSON view of a Histogram: totals, mean,
// estimated quantiles, and the non-empty buckets.
type HistogramSnapshot struct {
	// Count is the total number of samples.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Mean is Sum/Count (0 when empty).
	Mean float64 `json:"mean"`
	// P50, P90, and P99 are bucket-estimated quantiles (geometric bucket
	// midpoints, so at most 2x off; see DESIGN.md §9).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// Buckets lists the non-empty buckets in ascending bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Per-bucket atomicity
// only: a snapshot taken under concurrent writes is not a consistent
// cut, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.n.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	counts := make([]int64, histNumBkts)
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			counts[i] = c
			s.Buckets = append(s.Buckets, HistogramBucket{
				UpperBound: math.Ldexp(1, histMinExp+i),
				Count:      c,
			})
		}
	}
	s.P50 = quantile(counts, s.Count, 0.50)
	s.P90 = quantile(counts, s.Count, 0.90)
	s.P99 = quantile(counts, s.Count, 0.99)
	return s
}

// quantile estimates the q-th quantile from bucket counts, reporting the
// geometric midpoint of the bucket holding the q-th sample.
func quantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			// Bucket i spans (2^(e-1), 2^e]; report the geometric midpoint
			// 2^(e-0.5) = 2^e / sqrt(2).
			return math.Ldexp(1/math.Sqrt2, histMinExp+i)
		}
	}
	return math.Ldexp(1, histMinExp+histNumBkts-1)
}

// A Registry names and owns a set of instruments. Instruments are
// created on first use (Counter/Gauge/Histogram are get-or-create) so
// call sites need no registration ceremony; Snapshot serializes
// everything for /metrics-style endpoints. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry all pipeline layers
// (transform, compress, core, storage, faultio) record into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterCounter attaches an existing counter under name (replacing any
// previous instrument with that name) and returns it. This lets a
// component own its counter — e.g. the server's window cache counts its
// own hits — while still appearing in the registry's snapshot.
func (r *Registry) RegisterCounter(name string, c *Counter) *Counter {
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
	return c
}

// RegisterHistogram attaches an existing histogram under name (replacing
// any previous instrument with that name) and returns it.
func (r *Registry) RegisterHistogram(name string, h *Histogram) *Histogram {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
	return h
}

// Snapshot is the JSON document form of a registry: instrument name to
// current value, with map iteration order normalized by the encoder.
type Snapshot struct {
	// Counters maps counter names to their current counts.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges maps gauge names to their current values.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps histogram names to their snapshots.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Names returns the sorted names of every instrument in the snapshot.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every instrument's current value. Per-instrument
// atomicity only; the set is not a consistent cut.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge returns a snapshot combining s and other. Name collisions
// resolve in other's favor — used to overlay a server's local registry
// on the process-wide pipeline registry for a single /metrics document.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(other.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)+len(other.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(other.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range other.Histograms {
		out.Histograms[k] = v
	}
	return out
}

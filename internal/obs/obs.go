// Package obs is the pipeline-wide observability layer: a process-wide
// metrics registry (counters, gauges, and histograms with fixed
// log-spaced buckets), lightweight tracing spans propagated through
// context, and an HTTP handler exposing both as JSON.
//
// The package is built for hot paths that are already expensive at the
// call granularity being measured (a window decompression costs tens of
// milliseconds; a container fsync costs at least a disk flush), so every
// instrument is a handful of atomic operations:
//
//   - Counter and Gauge are single atomics.
//   - Histogram buckets an observation with math.Frexp (one float
//     decomposition, no loops, no locks) into power-of-two buckets.
//   - A span is recorded only when a root span was explicitly started for
//     the surrounding request or run; otherwise obs.Start is one context
//     lookup that returns a nil (no-op) span.
//
// All instruments degrade to no-ops when the package is disabled with
// SetEnabled(false), which is how the "overhead when disabled" numbers in
// DESIGN.md §9 are measured. Instruments are nil-safe: a nil *Counter,
// *Gauge, *Histogram, or *Span ignores all method calls, so callers never
// need to guard instrumentation sites.
//
// Naming convention: metric names are dot-separated "layer.measurement"
// with a unit suffix, e.g. "storage.read_seconds",
// "transform.forward_3d_seconds.cdf97", "compress.threshold_mb_per_s",
// "server.cache_hits". Dynamic label values (kernel names) are appended
// as a final dot-separated component in slug form.
package obs

import "sync/atomic"

// enabled gates all recording. Defaults to on: the per-call cost of the
// instruments is negligible against the window-granularity operations
// they measure (see DESIGN.md §9 for the measured overhead).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns all metric recording and span creation on or off
// process-wide. Disabling is intended for overhead measurements and for
// operators who want the binary equivalent of PR 3's uninstrumented
// pipeline; reads (snapshots, handlers) keep working and report whatever
// was recorded while enabled.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is currently on.
func Enabled() bool { return enabled.Load() }

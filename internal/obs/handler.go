package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an http.Handler serving the merged snapshot of the
// given registries as an indented JSON document — the /debug/vars-style
// endpoint mounted by stserve. Registries are merged left to right, so
// later registries win name collisions.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var s Snapshot
		for i, reg := range regs {
			if i == 0 {
				s = reg.Snapshot()
			} else {
				s = s.Merge(reg.Snapshot())
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
}

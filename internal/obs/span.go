package obs

import (
	"context"
	"sync"
	"time"
)

// A Span is one timed operation in a trace tree: a name, a start time, a
// duration (set by End), optional string attributes, and child spans.
// Spans are created with StartRoot (explicitly, at a request or run
// boundary) and Start (implicitly, anywhere a context is flowing); a nil
// *Span ignores every method, so instrumentation sites never check for
// tracing being off.
//
// A span's fields are written by the goroutine that created it, but
// children may be attached concurrently (the transform fans work out to
// worker goroutines), so child attachment and snapshotting are mutex'd.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    map[string]string
	children []*Span
}

// spanKey carries the current span through a context.
type spanKey struct{}

// StartRoot begins a new trace: a root span stored in the returned
// context, under which every subsequent Start call in the request or run
// records. Call End on the root and dump it with Tree when the traced
// unit finishes. Roots are only created at explicit opt-in points (a
// -trace flag, a trace-enabled server); when recording is disabled
// process-wide, StartRoot returns a nil span and tracing stays off.
func StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Start begins a child span under the span carried by ctx, returning a
// context carrying the child. When ctx carries no span (no root was
// started — the untraced common case), Start returns ctx and a nil span
// after a single context lookup.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil || !enabled.Load() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, s), s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End records the span's duration. Calling End more than once keeps the
// first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr attaches a string attribute to the span (cache state, window
// index, kernel name, ...).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SpanTree is the JSON snapshot of a span and its children. Times are
// reported as an offset from the tree's root start plus a duration, both
// in milliseconds, which keeps dumps compact and diffable.
type SpanTree struct {
	// Name is the span's operation name.
	Name string `json:"name"`
	// StartMs is the span's start offset from the root span's start.
	StartMs float64 `json:"start_ms"`
	// DurationMs is the span's duration (time until snapshot for spans
	// still running).
	DurationMs float64 `json:"duration_ms"`
	// Attrs holds the span's attributes, if any.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children holds the sub-spans in attachment order.
	Children []SpanTree `json:"children,omitempty"`
}

// Tree snapshots the span and its descendants. Safe to call while
// descendants are still recording; unfinished spans report the duration
// observed so far.
func (s *Span) Tree() SpanTree {
	if s == nil {
		return SpanTree{}
	}
	return s.tree(s.start)
}

func (s *Span) tree(root time.Time) SpanTree {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	t := SpanTree{
		Name:       s.name,
		StartMs:    float64(s.start.Sub(root)) / float64(time.Millisecond),
		DurationMs: float64(dur) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		t.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			t.Attrs[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		t.Children = append(t.Children, c.tree(root))
	}
	return t
}

// Walk visits the tree depth-first, calling fn with each node and its
// depth (0 for the root). Used by tests and by textual trace dumps.
func (t SpanTree) Walk(fn func(node SpanTree, depth int)) {
	t.walk(fn, 0)
}

func (t SpanTree) walk(fn func(SpanTree, int), depth int) {
	fn(t, depth)
	for _, c := range t.Children {
		c.walk(fn, depth+1)
	}
}

package obs

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	c.Add(1)
	g.Set(2)
	h.Observe(3)
	h.ObserveSince(time.Now())
	s.End()
	s.SetAttr("k", "v")
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Error("nil instruments recorded values")
	}
	if tree := s.Tree(); tree.Name != "" || len(tree.Children) != 0 {
		t.Errorf("nil span tree = %+v", tree)
	}
}

func TestDisabledRecordingIsOff(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	var c Counter
	var h Histogram
	c.Add(5)
	h.Observe(1)
	if c.Load() != 0 || h.Count() != 0 {
		t.Error("disabled instruments recorded values")
	}
	ctx, root := StartRoot(context.Background(), "root")
	if root != nil {
		t.Error("StartRoot returned a live span while disabled")
	}
	if _, child := Start(ctx, "child"); child != nil {
		t.Error("Start returned a live span while disabled")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// One sample per decade, plus edge cases.
	samples := []float64{0, -1, math.NaN(), 1e-9, 1e-3, 0.5, 1, 1.5, 1024, 1e12}
	for _, v := range samples {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(samples)) {
		t.Fatalf("count = %d, want %d", s.Count, len(samples))
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
		if b.Count <= 0 {
			t.Errorf("snapshot contains empty bucket at %g", b.UpperBound)
		}
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
	// Exact powers of two land in the bucket they bound: v = 1 has upper
	// bound exactly 1, v = 1024 has upper bound exactly 1024.
	for _, want := range []float64{1, 1024} {
		found := false
		for _, b := range s.Buckets {
			if b.UpperBound == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no bucket with upper bound %g", want)
		}
	}
	// Buckets ascend.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].UpperBound <= s.Buckets[i-1].UpperBound {
			t.Errorf("buckets not ascending: %g after %g", s.Buckets[i].UpperBound, s.Buckets[i-1].UpperBound)
		}
	}
}

func TestHistogramMeanAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples at ~1ms, 10 at ~100ms: p50 near 1ms, p99 near 100ms,
	// within the 2x bucket resolution.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.1)
	}
	s := h.Snapshot()
	wantMean := (100*0.001 + 10*0.1) / 110
	if math.Abs(s.Mean-wantMean) > 1e-12 {
		t.Errorf("mean = %g, want %g", s.Mean, wantMean)
	}
	if s.P50 < 0.0005 || s.P50 > 0.002 {
		t.Errorf("p50 = %g, want ~0.001 within 2x", s.P50)
	}
	if s.P99 < 0.05 || s.P99 > 0.2 {
		t.Errorf("p99 = %g, want ~0.1 within 2x", s.P99)
	}
}

func TestRegistryGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a.total") != r.Counter("a.total") {
		t.Error("Counter not idempotent")
	}
	if r.Histogram("a.seconds") != r.Histogram("a.seconds") {
		t.Error("Histogram not idempotent")
	}
	if r.Gauge("a.ratio") != r.Gauge("a.ratio") {
		t.Error("Gauge not idempotent")
	}
	r.Counter("a.total").Add(3)
	r.Gauge("a.ratio").Set(0.5)
	r.Histogram("a.seconds").Observe(0.25)

	own := NewCounter()
	own.Add(7)
	r.RegisterCounter("b.total", own)

	s := r.Snapshot()
	if s.Counters["a.total"] != 3 || s.Counters["b.total"] != 7 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Gauges["a.ratio"] != 0.5 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if s.Histograms["a.seconds"].Count != 1 {
		t.Errorf("histograms = %v", s.Histograms)
	}
	names := s.Names()
	if len(names) != 4 {
		t.Errorf("names = %v, want 4 entries", names)
	}
}

func TestRegistryConcurrentCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared.total").Add(1)
				r.Histogram("shared.seconds").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.total").Load(); got != 800 {
		t.Errorf("shared.total = %d, want 800", got)
	}
}

func TestSpanTree(t *testing.T) {
	ctx, root := StartRoot(context.Background(), "request")
	if root == nil {
		t.Fatal("StartRoot returned nil while enabled")
	}
	ctx1, read := Start(ctx, "storage.read_window")
	read.SetAttr("window", "3")
	_, decode := Start(ctx1, "core.decompress")
	decode.End()
	read.End()
	_, sib := Start(ctx, "cache.lookup")
	sib.End()
	root.End()

	tree := root.Tree()
	if tree.Name != "request" || len(tree.Children) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	if tree.Children[0].Name != "storage.read_window" ||
		tree.Children[0].Attrs["window"] != "3" ||
		len(tree.Children[0].Children) != 1 ||
		tree.Children[0].Children[0].Name != "core.decompress" {
		t.Errorf("child 0 = %+v", tree.Children[0])
	}
	if tree.Children[1].Name != "cache.lookup" {
		t.Errorf("child 1 = %+v", tree.Children[1])
	}
	var names []string
	tree.Walk(func(n SpanTree, depth int) { names = append(names, n.Name) })
	if len(names) != 4 {
		t.Errorf("walk visited %v", names)
	}
	// JSON round-trips.
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanTree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != tree.Name {
		t.Errorf("round-trip name = %q", back.Name)
	}
}

func TestStartWithoutRootIsNoOp(t *testing.T) {
	ctx, s := Start(context.Background(), "orphan")
	if s != nil {
		t.Error("Start without a root returned a live span")
	}
	if FromContext(ctx) != nil {
		t.Error("context unexpectedly carries a span")
	}
}

func TestHandlerServesMergedSnapshot(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("a.total").Add(1)
	b.Counter("b.total").Add(2)
	rec := httptest.NewRecorder()
	Handler(a, b).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if s.Counters["a.total"] != 1 || s.Counters["b.total"] != 2 {
		t.Errorf("merged counters = %v", s.Counters)
	}
}

// The overhead benchmarks below back the "instrumentation is below
// run-to-run noise" claim in EXPERIMENTS.md: the per-record cost of each
// primitive, with recording enabled and disabled.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5e-3)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	SetEnabled(false)
	defer SetEnabled(true)
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5e-3)
	}
}

func BenchmarkRegistryHistogramLookup(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		r.Histogram("storage.write_seconds").Observe(1.5e-3)
	}
}

func BenchmarkStartWithoutRoot(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "noop")
		sp.End()
	}
}

package ingest

// The crash matrix: every backpressure policy driven through injected
// storage faults (transient EIO, ENOSPC, fsync failure, torn writes),
// with the one invariant the drain design promises checked after each
// run — the journal is a bit-identical durable prefix of the true
// timeline, with gap markers accounting for every slice that is missing.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stwave/internal/core"
	"stwave/internal/faultio"
	"stwave/internal/obs"
	"stwave/internal/storage"
	"stwave/internal/wavelet"
)

// faultWriter builds a container writer over a fault-injecting file.
func faultWriter(t *testing.T, path string) (*storage.ContainerWriter, *faultio.File) {
	t.Helper()
	osf, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ff := faultio.Wrap(osf)
	return storage.NewContainerWriter(ff), ff
}

func sliceTimes(start, n int) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = float64(start+i) * testDT
	}
	return ts
}

// recordSize computes the exact on-disk record size of the window
// covering times at the given target ratio — compression is
// deterministic, so the streaming engine will write exactly these bytes.
func recordSize(t *testing.T, times []float64, ratio float64) int64 {
	t.Helper()
	opts := testOpts()
	opts.Ratio = ratio
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(refWindow(t, times))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return core.RecordHeaderSize + int64(buf.Len())
}

// gapRecordSize is the on-disk size of one journaled gap marker.
const gapRecordSize = core.RecordHeaderSize + core.GapMarkerSize

// TestIngestTransientWriteErrors: EIO that clears within the retry
// policy's attempts is absorbed below the backpressure layer entirely.
func TestIngestTransientWriteErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eio.stw")
	w, ff := faultWriter(t, path)
	eng, err := NewEngine(Config{Opts: testOpts(), Workers: 2, Policy: PolicyStall}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	ff.FailWrites(2) // DefaultRetryPolicy allows 3 attempts
	stats, err := eng.Run(newTestSource(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.Backpressure != 0 || stats.AppendRetries != 0 {
		t.Fatalf("stats = %+v; transient errors must not reach the policy layer", stats)
	}
	if windows, gaps, total := verifyTimeline(t, path); windows != 2 || gaps != 0 || total != 8 {
		t.Fatalf("timeline %d/%d/%d, want 2 windows covering 8 slices", windows, gaps, total)
	}
}

// TestIngestENOSPCStall: a full disk stalls the drain; when space frees,
// every window lands with nothing lost.
func TestIngestENOSPCStall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stall.stw")
	w, ff := faultWriter(t, path)
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 2, Policy: PolicyStall,
		RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one window record fits; window 1's append hits ENOSPC and
	// stalls. Free the space once the stall has provably begun.
	ff.SetFreeSpace(recordSize(t, sliceTimes(0, 4), 4))
	start := obs.Default().Counter("ingest.backpressure_events_total.stall").Load()
	wg := onCounterRise(t, "ingest.backpressure_events_total.stall", start, func() {
		ff.AddFreeSpace(1 << 20)
	})
	stats, err := eng.Run(newTestSource(t), 8)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.Backpressure < 1 || stats.AppendRetries < 1 || stats.WindowsShed != 0 {
		t.Fatalf("stats = %+v, want a stalled retry and no shedding", stats)
	}
	if windows, gaps, total := verifyTimeline(t, path); windows != 2 || gaps != 0 || total != 8 {
		t.Fatalf("timeline %d/%d/%d, want 2 windows covering 8 slices", windows, gaps, total)
	}
}

// TestIngestENOSPCDegrade: when the fine-ratio record does not fit, the
// degrade policy recompresses the retained raw window at the next rung
// and the journal records the coarser ratio in the window's own header.
func TestIngestENOSPCDegrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "degrade.stw")
	w, ff := faultWriter(t, path)
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 1, Policy: PolicyDegrade,
		Ladder: []float64{8, 16}, RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	fine := recordSize(t, sliceTimes(0, 4), 4)
	coarse := recordSize(t, sliceTimes(0, 4), 8)
	if coarse >= fine {
		t.Fatalf("coarse record (%d) not smaller than fine (%d); test sizing broken", coarse, fine)
	}
	ff.SetFreeSpace(coarse) // ratio-4 record cannot fit, ratio-8 exactly does
	stats, err := eng.Run(newTestSource(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	ff.AddFreeSpace(1 << 20) // room for the footer
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.DegradeSteps != 1 || stats.FinalRatio != 8 || stats.WindowsShed != 0 {
		t.Fatalf("stats = %+v, want exactly one degrade step to ratio 8", stats)
	}
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := r.ReadWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if cw.Opts.Ratio != 8 {
		t.Fatalf("recorded ratio %g, want 8", cw.Opts.Ratio)
	}
	if windows, gaps, total := verifyTimeline(t, path); windows != 1 || gaps != 0 || total != 4 {
		t.Fatalf("timeline %d/%d/%d, want the single degraded window", windows, gaps, total)
	}
}

// TestIngestENOSPCShed: with only gap-marker room left on disk, the shed
// policy converts every window into a write-failed gap — data is lost
// but the loss itself is journaled, slice for slice.
func TestIngestENOSPCShed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shed.stw")
	w, ff := faultWriter(t, path)
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 2, Policy: PolicyShed,
		RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	ff.SetFreeSpace(2*gapRecordSize + 10) // gaps fit, window records never do
	stats, err := eng.Run(newTestSource(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	ff.AddFreeSpace(1 << 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.WindowsAppended != 0 || stats.WindowsShed != 2 || stats.SlicesShed != 8 {
		t.Fatalf("stats = %+v, want both windows shed (8 slices)", stats)
	}
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 2; i++ {
		g, err := r.GapMarker(i)
		if err != nil {
			t.Fatal(err)
		}
		if g.Reason != core.GapWriteFailed {
			t.Fatalf("gap %d reason = %v, want write-failed", i, g.Reason)
		}
	}
	if windows, gaps, total := verifyTimeline(t, path); windows != 0 || gaps != 8 || total != 8 {
		t.Fatalf("timeline %d/%d/%d, want 8 slices fully gap-accounted", windows, gaps, total)
	}
}

// TestIngestFsyncFailure: under SyncPerWindow a failing fsync fails the
// append (the record is trimmed back out); the stall policy rewrites the
// same bytes once fsync recovers.
func TestIngestFsyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fsync.stw")
	w, ff := faultWriter(t, path)
	w.Sync = storage.SyncPerWindow
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 1, Policy: PolicyStall,
		RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	// Four transient sync faults: the first append burns its 3 retry
	// attempts and fails; the policy-level retry eats the fourth and lands.
	ff.FailSyncs(4)
	stats, err := eng.Run(newTestSource(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.AppendRetries < 1 || stats.WindowsAppended != 1 {
		t.Fatalf("stats = %+v, want the window to land via a policy retry", stats)
	}
	if windows, gaps, total := verifyTimeline(t, path); windows != 1 || gaps != 0 || total != 4 {
		t.Fatalf("timeline %d/%d/%d, want the single window intact", windows, gaps, total)
	}
}

// windowRecordSize is the on-disk record size of an already-compressed
// window, including the journal record header.
func windowRecordSize(t *testing.T, cw *core.CompressedWindow) int64 {
	t.Helper()
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return core.RecordHeaderSize + int64(buf.Len())
}

// TestIngestENOSPCDegradeShedsLevels: for progressive windows the degrade
// ladder's first step is free — the finest retained detail level is
// dropped (a suffix truncation of the level-major payload) before any
// recompression rung is paid for, and the durable bytes are exactly the
// deterministic encoding of the reduced window.
func TestIngestENOSPCDegradeShedsLevels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shedlevels.stw")
	w, ff := faultWriter(t, path)
	opts := testOpts()
	opts.Progressive = true
	opts.SpatialKernel = wavelet.Haar // 8^3 supports several Haar levels
	eng, err := NewEngine(Config{
		Opts: opts, Workers: 1, Policy: PolicyDegrade,
		Ladder: []float64{8}, RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := comp.CompressWindow(refWindow(t, sliceTimes(0, 4)))
	if err != nil {
		t.Fatal(err)
	}
	dropped, ok := full.DropFinestLevel()
	if !ok {
		t.Fatal("test window has no detail level to drop; geometry too small")
	}
	fullSize, droppedSize := windowRecordSize(t, full), windowRecordSize(t, dropped)
	if droppedSize >= fullSize {
		t.Fatalf("dropped record (%d) not smaller than full (%d); test sizing broken", droppedSize, fullSize)
	}
	ff.SetFreeSpace(droppedSize) // full record cannot fit, one-level drop exactly does
	stats, err := eng.Run(newTestSource(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	ff.AddFreeSpace(1 << 20) // room for the footer
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.LevelsShed != 1 || stats.DegradeSteps != 0 || stats.WindowsShed != 0 {
		t.Fatalf("stats = %+v, want exactly one shed level and no recompression rung", stats)
	}
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := r.ReadWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !cw.Progressive() || len(cw.LevelBlocks) != len(full.LevelBlocks)-1 {
		t.Fatalf("durable window has %d level groups, want %d", len(cw.LevelBlocks), len(full.LevelBlocks)-1)
	}
	if cw.Opts.Ratio != 4 {
		t.Fatalf("recorded ratio %g, want the fine ratio 4 (level shed must not change rung)", cw.Opts.Ratio)
	}
	var got, want bytes.Buffer
	if _, err := cw.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if _, err := dropped.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("durable payload differs from deterministic one-level-dropped encoding")
	}
}

// TestIngestTornWrite: a write torn mid-record is a permanent error; the
// writer trims the torn tail and the stall policy rewrites the record
// whole. The journal never exposes the torn bytes.
func TestIngestTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.stw")
	w, ff := faultWriter(t, path)
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 1, Policy: PolicyStall,
		RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	// Tear inside window 1's payload: its single record write persists a
	// prefix and fails.
	ff.TearAt(recordSize(t, sliceTimes(0, 4), 4) + 30)
	stats, err := eng.Run(newTestSource(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.AppendRetries < 1 {
		t.Fatalf("stats = %+v, want the torn append retried", stats)
	}
	if windows, gaps, total := verifyTimeline(t, path); windows != 2 || gaps != 0 || total != 8 {
		t.Fatalf("timeline %d/%d/%d, want both windows intact", windows, gaps, total)
	}
}

// TestIngestCrashConsistentDrain: the disk fills and never recovers, the
// stall deadline fires, and the writer is abandoned without Close — a
// crash. RecoverContainer must then hand back a container whose every
// entry is bit-identical to offline compression of the same slices: the
// durable prefix, nothing more, nothing corrupt.
func TestIngestCrashConsistentDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.stw")
	w, ff := faultWriter(t, path)
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 2, Policy: PolicyStall,
		Deadline: 300 * time.Millisecond, RetryEvery: 5 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	ff.SetFreeSpace(recordSize(t, sliceTimes(0, 4), 4)) // window 0 only, forever
	_, err = eng.Run(newTestSource(t), 12)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Run error = %v, want ErrDeadline", err)
	}
	// Crash: no Close, no footer. Recover from the journal alone.
	rep, err := storage.RecoverContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Good != 1 {
		t.Fatalf("recovered %d entries, want exactly the durable prefix of 1", rep.Good)
	}
	if windows, gaps, total := verifyTimeline(t, path); windows != 1 || gaps != 0 || total != 4 {
		t.Fatalf("timeline %d/%d/%d, want window 0 bit-identical and nothing else", windows, gaps, total)
	}
}

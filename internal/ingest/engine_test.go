package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/obs"
	"stwave/internal/sim/synth"
	"stwave/internal/storage"
)

const testDT = 0.5

func testDims() grid.Dims { return grid.Dims{Nx: 8, Ny: 8, Nz: 8} }

// newTestSource returns a deterministic synthetic source; two calls with
// the same seed produce identical slice streams, which is what the crash
// matrix's bit-identical assertions lean on.
func newTestSource(t *testing.T) Source {
	t.Helper()
	f, err := synth.NewField(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSynthSource(f, testDims(), testDT)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func testOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Mode = core.Spatiotemporal4D
	opts.WindowSize = 4
	opts.Ratio = 4
	return opts
}

// refWindow regenerates the window covering the given times from a fresh
// identical source ensemble.
func refWindow(t *testing.T, times []float64) *grid.Window {
	t.Helper()
	f, err := synth.NewField(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := testDims()
	w := grid.NewWindow(d)
	for _, tm := range times {
		if err := w.Append(f.SampleScalar(d.Nx, d.Ny, d.Nz, tm), tm); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// verifyTimeline asserts the crash-matrix invariant over a finalized or
// recovered container: entries form a contiguous slice timeline from
// slice 0, and every durable window's payload is bit-identical to a
// deterministic recompression of the same source slices at the ratio
// recorded in its own header. Returns (windows, gapSlices, totalSlices).
func verifyTimeline(t *testing.T, path string) (windows, gapSlices, total int) {
	t.Helper()
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	slice := 0
	for i := 0; i < r.NumWindows(); i++ {
		wi, err := r.WindowInfo(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if wi.Gap != nil {
			if got, want := wi.Gap.T0, float64(slice)*testDT; got != want {
				t.Fatalf("entry %d: gap starts at t=%g, want %g (timeline shifted)", i, got, want)
			}
			slice += wi.Gap.Slices
			gapSlices += wi.Gap.Slices
			continue
		}
		cw, err := r.ReadWindow(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got, want := cw.Times[0], float64(slice)*testDT; got != want {
			t.Fatalf("entry %d: window starts at t=%g, want %g (timeline shifted)", i, got, want)
		}
		// Rebuild the compressor from the run configuration plus the ratio
		// the window's own header recorded (degrade runs vary per window).
		opts := testOpts()
		opts.Ratio = cw.Opts.Ratio
		comp, err := core.New(opts)
		if err != nil {
			t.Fatalf("entry %d: rebuilding compressor: %v", i, err)
		}
		ref, err := comp.CompressWindow(refWindow(t, cw.Times))
		if err != nil {
			t.Fatalf("entry %d: recompressing reference: %v", i, err)
		}
		var got, want bytes.Buffer
		if _, err := cw.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("entry %d: durable payload differs from deterministic recompression at its recorded ratio %g",
				i, cw.Opts.Ratio)
		}
		slice += cw.NumSlices()
		windows++
	}
	return windows, gapSlices, slice
}

func TestIngestMatchesOfflineCompression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.stw")
	w, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{Opts: testOpts(), Workers: 2}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	// 10 slices at window 4: two full windows plus a partial flush.
	stats, err := eng.Run(newTestSource(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.SlicesIn != 10 || stats.WindowsAppended != 3 || stats.WindowsShed != 0 {
		t.Fatalf("stats = %+v, want 10 slices in 3 windows", stats)
	}
	windows, gaps, total := verifyTimeline(t, path)
	if windows != 3 || gaps != 0 || total != 10 {
		t.Fatalf("timeline: %d windows, %d gap slices, %d total; want 3/0/10", windows, gaps, total)
	}
}

// gateFile blocks every write until the test releases it — a storage tier
// that has simply stopped absorbing bytes, for driving the admission gate
// deterministically.
type gateFile struct {
	inner   storage.WritableFile
	release chan struct{}
}

func (g *gateFile) WriteAt(p []byte, off int64) (int, error) {
	<-g.release
	return g.inner.WriteAt(p, off)
}
func (g *gateFile) Truncate(size int64) error { <-g.release; return g.inner.Truncate(size) }
func (g *gateFile) Sync() error               { return g.inner.Sync() }
func (g *gateFile) Close() error              { return g.inner.Close() }

// counterDelta polls an obs counter until it rises above start (or times
// out), then runs fn — the hook for releasing a gate only after the
// backpressure path has provably fired.
func onCounterRise(t *testing.T, name string, start int64, fn func()) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if obs.Default().Counter(name).Load() > start {
				fn()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Errorf("counter %s never rose above %d", name, start)
		fn() // unwedge the run so the test fails instead of hanging
	}()
	return &wg
}

func gatedWriter(t *testing.T, path string) (*storage.ContainerWriter, chan struct{}) {
	t.Helper()
	osf, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	return storage.NewContainerWriter(&gateFile{inner: osf, release: release}), release
}

// TestIngestStallAdmission: with a one-window budget and storage wedged,
// the stall policy blocks the solver; once storage drains, everything
// lands and the ledger never exceeded the budget.
func TestIngestStallAdmission(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stall.stw")
	w, release := gatedWriter(t, path)
	budget := int64(4) * int64(testDims().Len()) * 8 // exactly one window
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 2, MemBudget: budget,
		Policy: PolicyStall, RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	start := obs.Default().Counter("ingest.backpressure_events_total.stall").Load()
	var released sync.Once
	wg := onCounterRise(t, "ingest.backpressure_events_total.stall", start, func() {
		released.Do(func() { close(release) })
	})
	stats, err := eng.Run(newTestSource(t), 8)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.Backpressure < 1 {
		t.Fatalf("stats = %+v, want at least one stall event", stats)
	}
	if stats.PeakInFlightBytes > budget {
		t.Fatalf("peak in-flight %d exceeded budget %d", stats.PeakInFlightBytes, budget)
	}
	windows, gaps, total := verifyTimeline(t, path)
	if windows != 2 || gaps != 0 || total != 8 {
		t.Fatalf("timeline: %d/%d/%d, want 2 windows, 0 gap slices, 8 total", windows, gaps, total)
	}
}

// TestIngestShedAdmission: same wedge, shed policy — later windows are
// dropped behind GapShed markers and the timeline stays aligned.
func TestIngestShedAdmission(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shed.stw")
	w, release := gatedWriter(t, path)
	budget := int64(4) * int64(testDims().Len()) * 8
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 2, MemBudget: budget,
		Policy: PolicyShed, RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0 is admitted and wedges in the append; windows 1 and 2 are
	// shed at admission. Release the gate only after both shed decisions
	// fired — the decision counter, not the gap-append counter, because
	// gap appends themselves need the gate open.
	start := obs.Default().Counter("ingest.backpressure_events_total.shed").Load()
	var released sync.Once
	wg := onCounterRise(t, "ingest.backpressure_events_total.shed", start+1, func() {
		released.Do(func() { close(release) })
	})
	stats, err := eng.Run(newTestSource(t), 12)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.WindowsAppended != 1 || stats.WindowsShed != 2 || stats.SlicesShed != 8 {
		t.Fatalf("stats = %+v, want 1 appended, 2 shed (8 slices)", stats)
	}
	windows, gaps, total := verifyTimeline(t, path)
	if windows != 1 || gaps != 8 || total != 12 {
		t.Fatalf("timeline: %d/%d/%d, want 1 window, 8 gap slices, 12 total", windows, gaps, total)
	}
	// Gap reasons must say shed-at-admission, and the gap markers mount
	// with the correct spans (checked inside verifyTimeline); check the
	// reason byte here.
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 1; i <= 2; i++ {
		g, err := r.GapMarker(i)
		if err != nil {
			t.Fatal(err)
		}
		if g.Reason != core.GapShed {
			t.Fatalf("gap %d reason = %v, want shed", i, g.Reason)
		}
	}
}

// TestIngestDegradeAdmission: under the same wedge, the degrade policy
// steps the ladder so the window submitted after pressure carries a
// coarser recorded ratio.
func TestIngestDegradeAdmission(t *testing.T) {
	path := filepath.Join(t.TempDir(), "degrade.stw")
	w, release := gatedWriter(t, path)
	budget := int64(4) * int64(testDims().Len()) * 8
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 2, MemBudget: budget,
		Policy: PolicyDegrade, Ladder: []float64{8, 16},
		RetryEvery: 2 * time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	start := obs.Default().Counter("ingest.degrade_steps_total").Load()
	var released sync.Once
	wg := onCounterRise(t, "ingest.degrade_steps_total", start, func() {
		released.Do(func() { close(release) })
	})
	stats, err := eng.Run(newTestSource(t), 8)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.DegradeSteps < 1 || stats.FinalRatio != 8 {
		t.Fatalf("stats = %+v, want >=1 degrade step landing on ratio 8", stats)
	}
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cw0, err := r.ReadWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	cw1, err := r.ReadWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	if cw0.Opts.Ratio != 4 || cw1.Opts.Ratio != 8 {
		t.Fatalf("recorded ratios %g, %g; want 4 then 8 (degrade recorded per-window)", cw0.Opts.Ratio, cw1.Opts.Ratio)
	}
	if _, _, total := verifyTimeline(t, path); total != 8 {
		t.Fatalf("timeline covers %d slices, want 8", total)
	}
}

// TestIngestStagesThroughBurstBuffer: with a staging tier configured,
// slices pass through the burst buffer and are dropped once durable.
func TestIngestStagesThroughBurstBuffer(t *testing.T) {
	dir := t.TempDir()
	stage, err := storage.NewBurstBuffer(dir, storage.DefaultModel(), testDims())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "staged.stw")
	w, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{Opts: testOpts(), Workers: 2, Stage: stage}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(newTestSource(t), 8); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stage.Len() != 0 {
		t.Fatalf("%d slices left staged after a clean run", stage.Len())
	}
	left, err := filepath.Glob(filepath.Join(dir, "slice-*.raw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("staged slice files left on disk: %v", left)
	}
	if _, _, total := verifyTimeline(t, path); total != 8 {
		t.Fatalf("timeline covers %d slices, want 8", total)
	}
}

func TestEngineValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.stw")
	w, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //stlint:ignore uncheckederr validation-only writer
	if _, err := NewEngine(Config{Opts: testOpts()}, grid.Dims{}, w); err == nil {
		t.Error("invalid dims accepted")
	}
	if _, err := NewEngine(Config{Opts: testOpts()}, testDims(), nil); err == nil {
		t.Error("nil writer accepted")
	}
	if _, err := NewEngine(Config{Opts: testOpts(), Policy: PolicyDegrade}, testDims(), w); err == nil {
		t.Error("degrade without ladder accepted")
	}
	if _, err := NewEngine(Config{Opts: testOpts(), Ladder: []float64{2}}, testDims(), w); err == nil {
		t.Error("non-coarsening ladder accepted")
	}
	eng, err := NewEngine(Config{Opts: testOpts()}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(newTestSource(t), 0); err == nil {
		t.Error("zero slices accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"stall": PolicyStall, "degrade": PolicyDegrade, "shed": PolicyShed} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParsePolicy("panic"); err == nil {
		t.Error("unknown policy accepted")
	}
}

var _ = errors.Is // keep errors imported for fault tests in this package

package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/obs"
	"stwave/internal/scratch"
	"stwave/internal/storage"
)

// Backpressure design. The engine keeps a byte ledger of every raw window
// it holds in memory: the one being filled from the solver plus every one
// submitted to the compression pipeline whose append has not completed.
// Raw buffers are retained until their window is durably appended — that
// is what lets the degrade policy recompress a window at a coarser ratio
// when the append itself fails — and are then recycled through the
// scratch arena, so steady-state memory is the budget, not the run
// length. When admitting the next window would exceed the budget, or when
// an append fails after retries, the configured policy decides what gives:
//
//   - stall:   the solver blocks until in-flight windows drain (or the
//     append starts succeeding again), bounded by Deadline.
//   - degrade: the target ratio steps down the configured ladder — later
//     windows compress coarser, and a window whose append hit ENOSPC is
//     recompressed at the coarser rung and retried. Every window records
//     its own ratio in its header, so a degraded run is self-describing.
//   - shed:    whole windows are dropped, the solver skips ahead, and a
//     journaled gap marker holds the window's place so the timeline of
//     every later window is unshifted.
//
// All container writes (windows and gap markers) flow through the
// pipeline's single delivery goroutine in submission order, so the
// journal is always a prefix of the true timeline — the crash matrix
// asserts exactly that.

// ErrDeadline reports that a stall (or degrade wait) exceeded
// Config.Deadline without the backlog draining.
var ErrDeadline = errors.New("ingest: backpressure deadline exceeded")

// ErrLadderExhausted reports that the degrade policy ran out of coarser
// rungs while storage still could not accept the window.
var ErrLadderExhausted = errors.New("ingest: degrade ladder exhausted")

// Policy selects what yields when storage cannot keep up with the solver.
type Policy int

const (
	// PolicyStall blocks the solver until storage drains.
	PolicyStall Policy = iota
	// PolicyDegrade steps the target ratio down a configured ladder.
	PolicyDegrade
	// PolicyShed drops whole windows behind journaled gap markers.
	PolicyShed
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStall:
		return "stall"
	case PolicyDegrade:
		return "degrade"
	case PolicyShed:
		return "shed"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses the -policy flag spellings.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "stall":
		return PolicyStall, nil
	case "degrade":
		return PolicyDegrade, nil
	case "shed":
		return PolicyShed, nil
	}
	return 0, fmt.Errorf("ingest: unknown policy %q (want stall, degrade, or shed)", s)
}

// Config tunes an Engine.
type Config struct {
	// Opts is the compression configuration; Opts.Ratio is the base
	// (finest) target ratio, Opts.WindowSize the slices per window.
	Opts core.Options
	// Workers is the compression pipeline width (<= 0 means 1).
	Workers int
	// MemBudget caps the raw bytes of windows held in memory — filling,
	// compressing, and awaiting append. <= 0 disables the gate.
	MemBudget int64
	// Policy picks the backpressure behaviour; see the constants.
	Policy Policy
	// Deadline bounds how long a stall (or degrade wait) may block before
	// the run fails with ErrDeadline. <= 0 means 30s.
	Deadline time.Duration
	// RetryEvery is the pause between append retries while stalled on a
	// failed write. <= 0 means 20ms.
	RetryEvery time.Duration
	// Ladder lists the degrade rungs: target ratios coarser than
	// Opts.Ratio, in increasing order. Required for PolicyDegrade.
	Ladder []float64
	// Stage, when non-nil, stages every raw slice in the burst buffer as
	// it is produced and drops it once its window is durable — the
	// paper's Figure 1 SSD tier, wired behind the admission gate.
	Stage *storage.BurstBuffer
}

// Stats summarizes a Run.
type Stats struct {
	SlicesIn          int     // slices produced by the source (incl. shed)
	WindowsAppended   int     // compressed windows durably appended
	WindowsShed       int     // gap markers appended
	SlicesShed        int     // slices covered by gap markers
	DegradeSteps      int     // ladder rungs stepped down
	LevelsShed        int     // finest detail levels dropped from progressive windows before any rung
	Backpressure      int     // admission blocks + append-failure events
	AppendRetries     int     // failed appends retried by policy
	FinalRatio        float64 // target ratio in effect at the end
	PeakInFlightBytes int64   // high-water mark of the raw-byte ledger
}

// windowJobOf is the per-window bookkeeping the delivery side needs: the
// retained raw window (for degrade recompression and buffer recycling),
// its ledger charge, which rung compressed it, and any staged slice ids.
type windowJobOf[F num.Float] struct {
	win      *grid.WindowOf[F]
	gap      *core.GapMarker // non-nil: journal a gap instead of a window
	rung     int
	rawBytes int64
	stageIDs []int
}

// Engine drives one streaming double-precision ingest run. Create with
// NewEngine, call Run once.
type Engine = EngineOf[float64]

// Engine32 is the single-precision ingest engine: window buffers hold
// float32 samples (half the raw-byte ledger per slice, so the same
// MemBudget admits twice the slices) and compression runs the native
// float32 pipeline down to the container bytes.
type Engine32 = EngineOf[float32]

// EngineOf is the precision-generic ingest engine behind Engine and
// Engine32.
type EngineOf[F num.Float] struct {
	cfg     Config
	w       *storage.ContainerWriter
	comps   []*core.Compressor // rung 0 = base ratio, then the ladder
	ratios  []float64
	winSize int
	dims    grid.Dims

	mu       sync.Mutex
	rung     int
	inFlight int64
	jobs     map[int]*windowJobOf[F]
	stats    Stats
	notify   chan struct{}
}

// NewEngine builds an engine appending to w. The writer stays owned by
// the caller: on success close it to finalize the footer; after a failed
// run the file is still a valid journal for RecoverContainer — that is
// the crash-consistent drain.
func NewEngine(cfg Config, dims grid.Dims, w *storage.ContainerWriter) (*Engine, error) {
	cfg.Opts.Precision = core.Float64
	return newEngineOf[float64](cfg, dims, w)
}

// NewEngine32 builds a single-precision engine appending to w. The
// error-bounded mode (MaxErr) is defined on the float64 oracle and is
// rejected.
func NewEngine32(cfg Config, dims grid.Dims, w *storage.ContainerWriter) (*Engine32, error) {
	cfg.Opts.Precision = core.Float32
	return newEngineOf[float32](cfg, dims, w)
}

func newEngineOf[F num.Float](cfg Config, dims grid.Dims, w *storage.ContainerWriter) (*EngineOf[F], error) {
	if w == nil {
		return nil, fmt.Errorf("ingest: nil container writer")
	}
	if !dims.Valid() {
		return nil, fmt.Errorf("ingest: invalid dims %v", dims)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 20 * time.Millisecond
	}
	ratios := append([]float64{cfg.Opts.Ratio}, cfg.Ladder...)
	for i := 1; i < len(ratios); i++ {
		if ratios[i] <= ratios[i-1] {
			return nil, fmt.Errorf("ingest: ladder rung %g does not coarsen previous ratio %g", ratios[i], ratios[i-1])
		}
	}
	if cfg.Policy == PolicyDegrade && len(cfg.Ladder) == 0 {
		return nil, fmt.Errorf("ingest: degrade policy needs a ratio ladder")
	}
	comps := make([]*core.Compressor, len(ratios))
	for i, r := range ratios {
		opts := cfg.Opts
		opts.Ratio = r
		c, err := core.New(opts)
		if err != nil {
			return nil, fmt.Errorf("ingest: rung %d (ratio %g): %w", i, r, err)
		}
		comps[i] = c
	}
	winSize := cfg.Opts.WindowSize
	if cfg.Opts.Mode == core.Spatial3D {
		winSize = 1
	}
	if winSize < 1 {
		return nil, fmt.Errorf("ingest: window size %d must be >= 1", winSize)
	}
	return &EngineOf[F]{
		cfg:     cfg,
		w:       w,
		comps:   comps,
		ratios:  ratios,
		winSize: winSize,
		dims:    dims,
		jobs:    make(map[int]*windowJobOf[F]),
		notify:  make(chan struct{}, 1),
	}, nil
}

// sliceBytes is the in-memory cost of one raw slice at the engine's
// sample precision — the float32 engine charges half the ledger bytes.
func (e *EngineOf[F]) sliceBytes() int64 {
	return int64(e.dims.Len()) * int64(num.SampleBytes[F]())
}

// wake nudges a producer blocked in the admission gate.
func (e *EngineOf[F]) wake() {
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// countBackpressure records one policy activation.
func (e *EngineOf[F]) countBackpressure(p Policy) {
	obs.Default().Counter("ingest.backpressure_events_total." + p.String()).Add(1)
	e.mu.Lock()
	e.stats.Backpressure++
	e.mu.Unlock()
}

// charge adds bytes to the in-flight ledger and updates the gauges.
func (e *EngineOf[F]) charge(n int64) {
	e.mu.Lock()
	e.inFlight += n
	if e.inFlight > e.stats.PeakInFlightBytes {
		e.stats.PeakInFlightBytes = e.inFlight
	}
	cur := e.inFlight
	depth := len(e.jobs)
	e.mu.Unlock()
	obs.Default().Gauge("ingest.inflight_bytes").Set(float64(cur))
	obs.Default().Gauge("ingest.queue_depth_windows").Set(float64(depth))
}

// Run streams totalSlices slices from src through compression into the
// container. It returns once every produced window is durably appended
// (or shed behind a gap marker), or on the first unrecoverable error — in
// which case the journal still ends at a record boundary with everything
// previously acknowledged intact.
func (e *EngineOf[F]) Run(src SourceOf[F], totalSlices int) (Stats, error) {
	if src.Dims() != e.dims {
		return e.snapshot(), fmt.Errorf("ingest: source dims %v != engine dims %v", src.Dims(), e.dims)
	}
	if totalSlices <= 0 {
		return e.snapshot(), fmt.Errorf("ingest: total slices %d must be positive", totalSlices)
	}
	pipe, err := core.NewPipeline(e.cfg.Workers, e.deliver)
	if err != nil {
		return e.snapshot(), err
	}
	nextID := 0
	runErr := func() error {
		for remaining := totalSlices; remaining > 0; {
			n := min(e.winSize, remaining)
			admitted, err := e.admit(int64(n)*e.sliceBytes(), pipe)
			if err != nil {
				return err
			}
			if !admitted {
				// Shed the window before it is ever sampled: the solver
				// steps past it and a gap marker holds its place.
				if err := e.shedWindow(pipe, &nextID, src, n); err != nil {
					return err
				}
				remaining -= n
				continue
			}
			if err := e.produceWindow(pipe, &nextID, src, n); err != nil {
				return err
			}
			remaining -= n
		}
		return nil
	}()
	closeErr := pipe.Close()
	e.releaseLeftovers()
	if runErr == nil {
		runErr = closeErr
	}
	return e.snapshot(), runErr
}

// admit blocks until charging need bytes fits the budget, applying the
// backpressure policy. Returns admitted=false when the policy decided to
// shed the window instead.
func (e *EngineOf[F]) admit(need int64, pipe *core.Pipeline) (bool, error) {
	if e.cfg.MemBudget <= 0 {
		e.charge(need)
		return true, nil
	}
	deadline := time.Now().Add(e.cfg.Deadline)
	blocked := false
	for {
		if err := pipe.Err(); err != nil {
			return false, err
		}
		e.mu.Lock()
		fits := e.inFlight+need <= e.cfg.MemBudget || e.inFlight == 0
		e.mu.Unlock()
		if fits {
			// inFlight == 0 admits a window larger than the whole budget:
			// an undersized budget must degrade throughput, not wedge.
			e.charge(need)
			return true, nil
		}
		if !blocked {
			blocked = true
			e.countBackpressure(e.cfg.Policy)
			switch e.cfg.Policy {
			case PolicyShed:
				return false, nil
			case PolicyDegrade:
				// Later windows compress coarser so the backlog drains
				// faster; the wait below is still what frees the bytes.
				e.stepRung()
			}
		}
		wait := min(time.Until(deadline), e.cfg.RetryEvery)
		if wait <= 0 {
			return false, fmt.Errorf("ingest: admission blocked for %v at %d in-flight bytes: %w",
				e.cfg.Deadline, e.loadInFlight(), ErrDeadline)
		}
		select {
		case <-e.notify:
		case <-time.After(wait):
		}
	}
}

func (e *EngineOf[F]) loadInFlight() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inFlight
}

// stepRung moves the ladder down one rung (coarser) if one remains.
func (e *EngineOf[F]) stepRung() {
	e.mu.Lock()
	if e.rung < len(e.comps)-1 {
		e.rung++
		e.stats.DegradeSteps++
		obs.Default().Counter("ingest.degrade_steps_total").Add(1)
	}
	e.mu.Unlock()
}

// produceWindow fills one window from the source (recycled buffers),
// optionally stages its slices, and submits it for compression.
func (e *EngineOf[F]) produceWindow(pipe *core.Pipeline, nextID *int, src SourceOf[F], n int) error {
	start := time.Now()
	win := grid.NewWindowOf[F](e.dims)
	job := &windowJobOf[F]{win: win, rawBytes: int64(n) * e.sliceBytes()}
	for i := 0; i < n; i++ {
		f, err := grid.FromDataOf(e.dims.Nx, e.dims.Ny, e.dims.Nz, scratch.FloatsOf[F](e.dims.Len()))
		if err != nil {
			e.releaseJob(job)
			return err
		}
		t, err := src.Next(f)
		if err != nil {
			e.releaseJob(job)
			return fmt.Errorf("ingest: source: %w", err)
		}
		if err := win.Append(f, t); err != nil {
			e.releaseJob(job)
			return err
		}
		if e.cfg.Stage != nil {
			id, err := storage.PutSliceOf(e.cfg.Stage, f)
			if err != nil {
				e.releaseJob(job)
				return fmt.Errorf("ingest: staging slice: %w", err)
			}
			job.stageIDs = append(job.stageIDs, id)
		}
		e.mu.Lock()
		e.stats.SlicesIn++
		e.mu.Unlock()
		obs.Default().Counter("ingest.slices_in_total").Add(1)
	}
	obs.Default().Histogram("ingest.solve_seconds").ObserveSince(start)

	e.mu.Lock()
	job.rung = e.rung
	comp := e.comps[job.rung]
	e.jobs[*nextID] = job
	e.mu.Unlock()
	*nextID++
	_, err := pipe.Submit(func() (*core.CompressedWindow, error) {
		cstart := time.Now()
		cw, err := core.CompressWindowOf(context.Background(), comp, win)
		if err == nil {
			obs.Default().Histogram("ingest.compress_seconds").ObserveSince(cstart)
		}
		return cw, err
	})
	return err
}

// shedWindow steps the solver past n slices and journals a gap marker in
// their place, routed through the pipeline so it lands in timeline order.
func (e *EngineOf[F]) shedWindow(pipe *core.Pipeline, nextID *int, src SourceOf[F], n int) error {
	var t0, t1 float64
	for i := 0; i < n; i++ {
		t, err := src.Skip()
		if err != nil {
			return fmt.Errorf("ingest: source skip: %w", err)
		}
		if i == 0 {
			t0 = t
		}
		t1 = t
	}
	e.mu.Lock()
	e.stats.SlicesIn += n
	e.mu.Unlock()
	obs.Default().Counter("ingest.slices_in_total").Add(int64(n))
	g := core.GapMarker{Slices: n, T0: t0, T1: t1, Reason: core.GapShed}
	e.mu.Lock()
	e.jobs[*nextID] = &windowJobOf[F]{gap: &g}
	e.mu.Unlock()
	*nextID++
	_, err := pipe.Submit(func() (*core.CompressedWindow, error) { return nil, nil })
	return err
}

// deliver is the pipeline sink: it journals one entry (window or gap) in
// submission order, applying the backpressure policy to append failures,
// then releases the window's memory and wakes the producer.
func (e *EngineOf[F]) deliver(id int, cw *core.CompressedWindow) error {
	e.mu.Lock()
	job := e.jobs[id]
	e.mu.Unlock()
	if job == nil {
		return fmt.Errorf("ingest: no bookkeeping for window %d", id)
	}
	var err error
	if job.gap != nil {
		err = e.appendGap(*job.gap)
	} else {
		err = e.appendWindow(job, cw)
	}
	if err != nil {
		return err
	}
	e.mu.Lock()
	delete(e.jobs, id)
	e.mu.Unlock()
	e.releaseJob(job)
	e.charge(-job.rawBytes)
	e.wake()
	return nil
}

// appendWindow appends cw, driving the policy through append failures:
// stall retries the same bytes until the deadline, degrade recompresses
// the retained raw window at coarser rungs, shed gives the window up and
// journals a write-failed gap in its place.
func (e *EngineOf[F]) appendWindow(job *windowJobOf[F], cw *core.CompressedWindow) error {
	start := time.Now()
	deadline := time.Now().Add(e.cfg.Deadline)
	rung := job.rung
	counted := false
	for {
		_, err := e.w.Append(cw)
		if err == nil {
			obs.Default().Histogram("ingest.append_seconds").ObserveSince(start)
			obs.Default().Counter("ingest.windows_appended_total").Add(1)
			e.mu.Lock()
			e.stats.WindowsAppended++
			e.mu.Unlock()
			return nil
		}
		if !counted {
			counted = true
			e.countBackpressure(e.cfg.Policy)
		}
		// Re-arm the writer; if even the journal tail cannot be trimmed
		// there is no safe way to continue under any policy.
		if cerr := e.w.ClearError(); cerr != nil {
			return cerr
		}
		e.mu.Lock()
		e.stats.AppendRetries++
		e.mu.Unlock()
		switch e.cfg.Policy {
		case PolicyShed:
			g := core.GapMarker{
				Slices: cw.NumSlices(),
				T0:     cw.Times[0],
				T1:     cw.Times[len(cw.Times)-1],
				Reason: core.GapWriteFailed,
			}
			if gerr := e.appendGap(g); gerr != nil {
				return fmt.Errorf("ingest: append failed (%v) and gap marker failed: %w", err, gerr)
			}
			return nil
		case PolicyDegrade:
			// A progressive window has a free degrade step before any
			// recompression rung: dropping its finest retained detail level
			// shrinks the payload without touching the raw window (the
			// level-major layout makes the finest group a suffix). Only
			// when the window is down to its approximation group does the
			// ladder pay for a coarser recompression.
			if dropped, ok := cw.DropFinestLevel(); ok {
				cw = dropped
				e.mu.Lock()
				e.stats.LevelsShed++
				e.mu.Unlock()
				obs.Default().Counter("ingest.levels_shed_total").Add(1)
				continue
			}
			if rung >= len(e.comps)-1 {
				return fmt.Errorf("ingest: append failed at coarsest rung (ratio %g): %v: %w",
					e.ratios[rung], err, ErrLadderExhausted)
			}
			rung++
			job.rung = rung
			e.mu.Lock()
			if e.rung < rung {
				// Later windows start coarse too instead of rediscovering
				// the failure one window at a time.
				e.rung = rung
			}
			e.stats.DegradeSteps++
			e.mu.Unlock()
			obs.Default().Counter("ingest.degrade_steps_total").Add(1)
			recompressed, rerr := core.CompressWindowOf(context.Background(), e.comps[rung], job.win)
			if rerr != nil {
				return rerr
			}
			cw = recompressed
		case PolicyStall:
			if time.Now().After(deadline) {
				return fmt.Errorf("ingest: append retries exhausted after %v: %v: %w", e.cfg.Deadline, err, ErrDeadline)
			}
			time.Sleep(min(e.cfg.RetryEvery, time.Until(deadline)))
		}
	}
}

// appendGap journals one gap marker, with the same deadline-bounded retry
// as a stalled window append — losing data AND the record of the loss is
// the one outcome every policy forbids.
func (e *EngineOf[F]) appendGap(g core.GapMarker) error {
	deadline := time.Now().Add(e.cfg.Deadline)
	for {
		_, err := e.w.AppendGap(g)
		if err == nil {
			obs.Default().Counter("ingest.windows_shed_total").Add(1)
			e.mu.Lock()
			e.stats.WindowsShed++
			e.stats.SlicesShed += g.Slices
			e.mu.Unlock()
			return nil
		}
		if cerr := e.w.ClearError(); cerr != nil {
			return cerr
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ingest: gap marker append: %v: %w", err, ErrDeadline)
		}
		e.mu.Lock()
		e.stats.AppendRetries++
		e.mu.Unlock()
		time.Sleep(min(e.cfg.RetryEvery, time.Until(deadline)))
	}
}

// releaseJob recycles a window's raw buffers and drops its staged slices.
func (e *EngineOf[F]) releaseJob(job *windowJobOf[F]) {
	if job.win != nil {
		for _, s := range job.win.Slices {
			scratch.PutFloatsOf(s.Data)
			s.Data = nil
		}
		job.win = nil
	}
	if e.cfg.Stage != nil {
		for _, id := range job.stageIDs {
			e.cfg.Stage.Drop(id) //stlint:ignore uncheckederr staged slices are a cache; a failed drop only leaves litter for the next orphan GC
		}
		job.stageIDs = nil
	}
}

// releaseLeftovers recycles every job the pipeline abandoned on error.
func (e *EngineOf[F]) releaseLeftovers() {
	e.mu.Lock()
	left := make([]*windowJobOf[F], 0, len(e.jobs))
	for id, job := range e.jobs {
		left = append(left, job)
		delete(e.jobs, id)
	}
	e.inFlight = 0
	e.mu.Unlock()
	for _, job := range left {
		e.releaseJob(job)
	}
	obs.Default().Gauge("ingest.inflight_bytes").Set(0)
	obs.Default().Gauge("ingest.queue_depth_windows").Set(0)
}

// snapshot copies the stats under the lock and stamps the final ratio.
func (e *EngineOf[F]) snapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.FinalRatio = e.ratios[e.rung]
	return s
}

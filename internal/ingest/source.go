// Package ingest is the in-situ streaming path: it wires a live
// simulation (internal/sim) into a bounded-memory compress-and-append
// loop over a container journal, the workflow the paper's Figure 1 sketch
// assumes but never has to operate — a solver that produces slices
// whether or not the storage tier can keep up. The engine accumulates
// slices into windows built from recycled scratch buffers, pipelines
// compression across windows (core.Pipeline), gates admission on a byte
// budget, and when storage falls behind applies a configured backpressure
// policy: stall the solver, degrade to a coarser target ratio, or shed
// whole windows behind a journaled gap marker so the timeline never
// shifts.
//
// Both sample precisions stream through the same engine: the float64 path
// is the reference pipeline, and the float32 path (SourceOf[float32],
// NewEngine32) keeps single-precision sources at 4 bytes per sample from
// the solver fill through the durable container bytes — the window
// buffers, the staging tier, and the compressed payload never widen.
package ingest

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/sim/cloverleaf"
	"stwave/internal/sim/ghost"
	"stwave/internal/sim/synth"
	"stwave/internal/sim/tornado"
)

// SourceOf produces one scalar field slice per simulation step at sample
// precision F. The engine owns dst and recycles it between windows, so
// implementations must fill it in place rather than retain it.
type SourceOf[F num.Float] interface {
	// Dims is the slice geometry every Next fill will have.
	Dims() grid.Dims
	// Next advances the simulation one step, fills dst with the tracked
	// field, and returns the slice's simulation time.
	Next(dst *grid.Field3DOf[F]) (float64, error)
	// Skip advances one step without sampling — the shed policy drops a
	// window's worth of output but the simulation must keep its own state
	// marching. Returns the skipped slice's simulation time.
	Skip() (float64, error)
}

// Source is the double-precision source interface — the reference path.
type Source = SourceOf[float64]

// Source32 is the single-precision source interface: slices are filled as
// float32 and stay float32 through compression.
type Source32 = SourceOf[float32]

// fillGhost dispatches a ghost scalar fill to the concrete precision.
func fillGhost[F num.Float](s *ghost.Solver, dst *grid.Field3DOf[F]) error {
	switch d := any(dst).(type) {
	case *grid.Field3D:
		return s.ScalarInto(d)
	case *grid.Field3D32:
		return s.ScalarInto32(d)
	}
	return fmt.Errorf("ingest: unsupported precision %T", dst)
}

// ghostSourceOf tracks the passive scalar of the pseudo-spectral solver.
type ghostSourceOf[F num.Float] struct{ s *ghost.Solver }

// NewGhostSourceOf adapts a ghost solver (which must have a scalar
// attached) as a streaming source at precision F.
func NewGhostSourceOf[F num.Float](s *ghost.Solver) (SourceOf[F], error) {
	if !s.HasScalar() {
		return nil, fmt.Errorf("ingest: ghost solver has no scalar attached")
	}
	return &ghostSourceOf[F]{s: s}, nil
}

// NewGhostSource adapts a ghost solver as a double-precision source.
func NewGhostSource(s *ghost.Solver) (Source, error) {
	return NewGhostSourceOf[float64](s)
}

func (g *ghostSourceOf[F]) Dims() grid.Dims {
	return grid.Dims{Nx: g.s.N(), Ny: g.s.N(), Nz: g.s.N()}
}

func (g *ghostSourceOf[F]) Next(dst *grid.Field3DOf[F]) (float64, error) {
	g.s.Step()
	return g.s.Time(), fillGhost(g.s, dst)
}

func (g *ghostSourceOf[F]) Skip() (float64, error) {
	g.s.Step()
	return g.s.Time(), nil
}

// fillCloverleaf dispatches a density fill to the concrete precision.
func fillCloverleaf[F num.Float](s *cloverleaf.Solver, dst *grid.Field3DOf[F]) error {
	switch d := any(dst).(type) {
	case *grid.Field3D:
		return s.DensityInto(d)
	case *grid.Field3D32:
		return s.DensityInto32(d)
	}
	return fmt.Errorf("ingest: unsupported precision %T", dst)
}

// cloverleafSourceOf tracks the density field of the Euler solver.
type cloverleafSourceOf[F num.Float] struct{ s *cloverleaf.Solver }

// NewCloverleafSourceOf adapts a cloverleaf solver as a streaming source
// at precision F.
func NewCloverleafSourceOf[F num.Float](s *cloverleaf.Solver) SourceOf[F] {
	return &cloverleafSourceOf[F]{s: s}
}

// NewCloverleafSource adapts a cloverleaf solver as a double-precision
// source.
func NewCloverleafSource(s *cloverleaf.Solver) Source {
	return NewCloverleafSourceOf[float64](s)
}

func (c *cloverleafSourceOf[F]) Dims() grid.Dims {
	return grid.Dims{Nx: c.s.N(), Ny: c.s.N(), Nz: c.s.N()}
}

func (c *cloverleafSourceOf[F]) Next(dst *grid.Field3DOf[F]) (float64, error) {
	c.s.Step()
	return c.s.Time(), fillCloverleaf(c.s, dst)
}

func (c *cloverleafSourceOf[F]) Skip() (float64, error) {
	c.s.Step()
	return c.s.Time(), nil
}

// fillTornado dispatches a cloud-water fill to the concrete precision.
func fillTornado[F num.Float](m *tornado.Model, dst *grid.Field3DOf[F], t float64) error {
	switch d := any(dst).(type) {
	case *grid.Field3D:
		return m.CloudMixingRatioInto(d, t)
	case *grid.Field3D32:
		return m.CloudMixingRatioInto32(d, t)
	}
	return fmt.Errorf("ingest: unsupported precision %T", dst)
}

// tornadoSourceOf samples the analytic supercell's cloud mixing ratio on a
// fixed step size.
type tornadoSourceOf[F num.Float] struct {
	m    *tornado.Model
	dt   float64
	step int
}

// NewTornadoSourceOf adapts the analytic tornado model as a streaming
// source stepping dt per slice at precision F.
func NewTornadoSourceOf[F num.Float](m *tornado.Model, dt float64) (SourceOf[F], error) {
	if dt <= 0 {
		return nil, fmt.Errorf("ingest: step size %g must be positive", dt)
	}
	return &tornadoSourceOf[F]{m: m, dt: dt}, nil
}

// NewTornadoSource adapts the analytic tornado model as a
// double-precision source stepping dt per slice.
func NewTornadoSource(m *tornado.Model, dt float64) (Source, error) {
	return NewTornadoSourceOf[float64](m, dt)
}

func (s *tornadoSourceOf[F]) Dims() grid.Dims {
	cfg := s.m.Config()
	return grid.Dims{Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.Nz}
}

func (s *tornadoSourceOf[F]) Next(dst *grid.Field3DOf[F]) (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, fillTornado(s.m, dst, t)
}

func (s *tornadoSourceOf[F]) Skip() (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, nil
}

// fillSynth dispatches a kinematic scalar fill to the concrete precision.
func fillSynth[F num.Float](f *synth.Field, dst *grid.Field3DOf[F], t float64) error {
	switch d := any(dst).(type) {
	case *grid.Field3D:
		return f.SampleScalarInto(d, t)
	case *grid.Field3D32:
		return f.SampleScalarInto32(d, t)
	}
	return fmt.Errorf("ingest: unsupported precision %T", dst)
}

// synthSourceOf samples the kinematic turbulence field at a chosen grid
// size and step.
type synthSourceOf[F num.Float] struct {
	f    *synth.Field
	dims grid.Dims
	dt   float64
	step int
}

// NewSynthSourceOf adapts a synthetic kinematic field as a streaming
// source sampling dims at interval dt at precision F.
func NewSynthSourceOf[F num.Float](f *synth.Field, dims grid.Dims, dt float64) (SourceOf[F], error) {
	if !dims.Valid() {
		return nil, fmt.Errorf("ingest: invalid dims %v", dims)
	}
	if dt <= 0 {
		return nil, fmt.Errorf("ingest: step size %g must be positive", dt)
	}
	return &synthSourceOf[F]{f: f, dims: dims, dt: dt}, nil
}

// NewSynthSource adapts a synthetic kinematic field as a double-precision
// source sampling dims at interval dt.
func NewSynthSource(f *synth.Field, dims grid.Dims, dt float64) (Source, error) {
	return NewSynthSourceOf[float64](f, dims, dt)
}

func (s *synthSourceOf[F]) Dims() grid.Dims { return s.dims }

func (s *synthSourceOf[F]) Next(dst *grid.Field3DOf[F]) (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, fillSynth(s.f, dst, t)
}

func (s *synthSourceOf[F]) Skip() (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, nil
}

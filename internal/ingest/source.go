// Package ingest is the in-situ streaming path: it wires a live
// simulation (internal/sim) into a bounded-memory compress-and-append
// loop over a container journal, the workflow the paper's Figure 1 sketch
// assumes but never has to operate — a solver that produces slices
// whether or not the storage tier can keep up. The engine accumulates
// slices into windows built from recycled scratch buffers, pipelines
// compression across windows (core.Pipeline), gates admission on a byte
// budget, and when storage falls behind applies a configured backpressure
// policy: stall the solver, degrade to a coarser target ratio, or shed
// whole windows behind a journaled gap marker so the timeline never
// shifts.
package ingest

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/sim/cloverleaf"
	"stwave/internal/sim/ghost"
	"stwave/internal/sim/synth"
	"stwave/internal/sim/tornado"
)

// Source produces one scalar field slice per simulation step. The engine
// owns dst and recycles it between windows, so implementations must fill
// it in place rather than retain it.
type Source interface {
	// Dims is the slice geometry every Next fill will have.
	Dims() grid.Dims
	// Next advances the simulation one step, fills dst with the tracked
	// field, and returns the slice's simulation time.
	Next(dst *grid.Field3D) (float64, error)
	// Skip advances one step without sampling — the shed policy drops a
	// window's worth of output but the simulation must keep its own state
	// marching. Returns the skipped slice's simulation time.
	Skip() (float64, error)
}

// ghostSource tracks the passive scalar of the pseudo-spectral solver.
type ghostSource struct{ s *ghost.Solver }

// NewGhostSource adapts a ghost solver (which must have a scalar
// attached) as a streaming source.
func NewGhostSource(s *ghost.Solver) (Source, error) {
	if !s.HasScalar() {
		return nil, fmt.Errorf("ingest: ghost solver has no scalar attached")
	}
	return &ghostSource{s: s}, nil
}

func (g *ghostSource) Dims() grid.Dims {
	return grid.Dims{Nx: g.s.N(), Ny: g.s.N(), Nz: g.s.N()}
}

func (g *ghostSource) Next(dst *grid.Field3D) (float64, error) {
	g.s.Step()
	return g.s.Time(), g.s.ScalarInto(dst)
}

func (g *ghostSource) Skip() (float64, error) {
	g.s.Step()
	return g.s.Time(), nil
}

// cloverleafSource tracks the density field of the Euler solver.
type cloverleafSource struct{ s *cloverleaf.Solver }

// NewCloverleafSource adapts a cloverleaf solver as a streaming source.
func NewCloverleafSource(s *cloverleaf.Solver) Source {
	return &cloverleafSource{s: s}
}

func (c *cloverleafSource) Dims() grid.Dims {
	return grid.Dims{Nx: c.s.N(), Ny: c.s.N(), Nz: c.s.N()}
}

func (c *cloverleafSource) Next(dst *grid.Field3D) (float64, error) {
	c.s.Step()
	return c.s.Time(), c.s.DensityInto(dst)
}

func (c *cloverleafSource) Skip() (float64, error) {
	c.s.Step()
	return c.s.Time(), nil
}

// tornadoSource samples the analytic supercell's cloud mixing ratio on a
// fixed step size.
type tornadoSource struct {
	m    *tornado.Model
	dt   float64
	step int
}

// NewTornadoSource adapts the analytic tornado model as a streaming
// source stepping dt per slice.
func NewTornadoSource(m *tornado.Model, dt float64) (Source, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("ingest: step size %g must be positive", dt)
	}
	return &tornadoSource{m: m, dt: dt}, nil
}

func (s *tornadoSource) Dims() grid.Dims {
	cfg := s.m.Config()
	return grid.Dims{Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.Nz}
}

func (s *tornadoSource) Next(dst *grid.Field3D) (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, s.m.CloudMixingRatioInto(dst, t)
}

func (s *tornadoSource) Skip() (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, nil
}

// synthSource samples the kinematic turbulence field at a chosen grid
// size and step.
type synthSource struct {
	f    *synth.Field
	dims grid.Dims
	dt   float64
	step int
}

// NewSynthSource adapts a synthetic kinematic field as a streaming
// source sampling dims at interval dt.
func NewSynthSource(f *synth.Field, dims grid.Dims, dt float64) (Source, error) {
	if !dims.Valid() {
		return nil, fmt.Errorf("ingest: invalid dims %v", dims)
	}
	if dt <= 0 {
		return nil, fmt.Errorf("ingest: step size %g must be positive", dt)
	}
	return &synthSource{f: f, dims: dims, dt: dt}, nil
}

func (s *synthSource) Dims() grid.Dims { return s.dims }

func (s *synthSource) Next(dst *grid.Field3D) (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, s.f.SampleScalarInto(dst, t)
}

func (s *synthSource) Skip() (float64, error) {
	t := float64(s.step) * s.dt
	s.step++
	return t, nil
}

package ingest

import (
	"path/filepath"
	"testing"
	"time"

	"stwave/internal/storage"
)

// runWithBudget streams the given number of windows under a fixed byte
// budget and returns the high-water mark of the raw-byte ledger.
func runWithBudget(t *testing.T, windows int, budget int64) int64 {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mem.stw")
	w, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Opts: testOpts(), Workers: 4, MemBudget: budget,
		Policy: PolicyStall, RetryEvery: time.Millisecond,
	}, testDims(), w)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run(newTestSource(t), windows*4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.WindowsAppended != windows || stats.WindowsShed != 0 {
		t.Fatalf("stats = %+v, want %d windows appended", stats, windows)
	}
	return stats.PeakInFlightBytes
}

// TestIngestBoundedMemory is the ISSUE's scaling acceptance in ledger
// form: the raw-byte high-water mark is capped by the budget and does
// not grow with run length — 10x the windows, same peak bound.
func TestIngestBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 100 windows")
	}
	winBytes := int64(4) * int64(testDims().Len()) * 8
	budget := 3 * winBytes
	peak10 := runWithBudget(t, 10, budget)
	peak100 := runWithBudget(t, 100, budget)
	// The bound must not scale with run length: 10x the windows, same
	// budget ceiling. (The exact peak below the ceiling can vary by a
	// window with scheduling; the ceiling cannot.)
	if peak10 > budget || peak100 > budget {
		t.Fatalf("ledger exceeded budget %d: peak10=%d peak100=%d", budget, peak10, peak100)
	}
	t.Logf("peak in-flight: 10 windows = %d bytes, 100 windows = %d bytes (budget %d)", peak10, peak100, budget)
}

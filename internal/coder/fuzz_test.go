package coder

import (
	"math"
	"testing"
)

// FuzzDecode: the embedded decoder accepts arbitrary bytes after a valid
// header without panicking, and never produces NaN/Inf coefficients.
func FuzzDecode(f *testing.F) {
	stream, err := Encode([]float64{3, -1.5, 0, 8, 1e-9}, 16)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(stream)
	f.Add(stream[:headerSize])
	f.Add([]byte{'E', 'B', 1, 200, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(data)
		if err != nil {
			return
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("coefficient %d decoded to %g", i, v)
			}
		}
	})
}

// Package coder implements an embedded (progressive) bitplane coder for
// wavelet coefficients, in the spirit of the SPECK/SPIHT/EBCOT family the
// paper cites for "efficient coding and storage of these high-information
// coefficients" (Section II-B) without addressing. The encoded stream is
// quality-scalable: decoding any prefix yields a valid, coarser
// reconstruction, and each additional bitplane roughly halves the maximum
// error. This also supplies the paper's Section V-E wish — smarter coders
// on the coefficient stream — as a composable layer on top of the
// thresholding codec.
//
// The coder is a plain bitplane coder (no zerotrees): per plane it emits a
// significance bit for every still-insignificant coefficient, a sign bit on
// the transition, and a refinement bit for every already-significant one.
// Simplicity over entropy optimality: the value of this layer in stwave is
// progressiveness, not the last few percent of rate. When rate matters more
// than progressiveness, use the Huffman/exp-Golomb coder in
// internal/entropy instead — it is wired into the storage pipeline as the
// "entropy" backend of internal/codec, whereas this package remains a
// standalone analysis layer.
package coder

import (
	"encoding/binary"
	"fmt"
	"math"

	"stwave/internal/fbits"
)

// header layout: magic 'E','B', version 1, planes uint8, n uint32, maxExp
// int32 (little endian).
const headerSize = 12

// Encode produces an embedded stream for coeffs using the given number of
// bitplanes (1-64). More planes mean a longer stream and a more precise
// full reconstruction; 24 planes reach well below float32 precision for
// typical data.
func Encode(coeffs []float64, planes int) ([]byte, error) {
	if planes < 1 || planes > 64 {
		return nil, fmt.Errorf("coder: planes must be in [1,64], got %d", planes)
	}
	n := len(coeffs)
	maxMag := 0.0
	for _, v := range coeffs {
		if m := math.Abs(v); m > maxMag {
			maxMag = m
		}
	}
	var maxExp int32
	if maxMag > 0 {
		maxExp = int32(math.Floor(math.Log2(maxMag)))
	} else {
		planes = 1 // nothing to encode beyond the (empty) first pass
	}

	if n > math.MaxUint32 {
		return nil, fmt.Errorf("coder: %d coefficients exceed the uint32 header field", n)
	}
	out := make([]byte, headerSize)
	out[0], out[1], out[2] = 'E', 'B', 1
	out[3] = byte(planes)
	binary.LittleEndian.PutUint32(out[4:8], uint32(n))
	binary.LittleEndian.PutUint32(out[8:12], uint32(maxExp)) //stlint:ignore trunccast two's-complement reinterpretation is the wire format; Decode mirrors it with int32(Uint32)
	if fbits.Zero(maxMag) || n == 0 {
		return out, nil
	}

	bw := newBitWriter(out)
	significant := make([]bool, n)
	threshold := math.Ldexp(1, int(maxExp)) // 2^maxExp <= maxMag < 2^(maxExp+1)
	for p := 0; p < planes; p++ {
		for i, v := range coeffs {
			m := math.Abs(v)
			if !significant[i] {
				if m >= threshold {
					significant[i] = true
					bw.writeBit(1)
					if v < 0 {
						bw.writeBit(1)
					} else {
						bw.writeBit(0)
					}
				} else {
					bw.writeBit(0)
				}
			} else {
				// Refinement: the bit of |v| at this plane.
				if math.Mod(m, 2*threshold) >= threshold {
					bw.writeBit(1)
				} else {
					bw.writeBit(0)
				}
			}
		}
		threshold /= 2
	}
	return bw.finish(), nil
}

// Decode reconstructs coefficients from a (possibly truncated) embedded
// stream. The header must be intact; any amount of payload after it is
// accepted — missing bits simply leave coefficients at their coarser
// estimates, which is the point of an embedded code.
func Decode(data []byte) ([]float64, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("coder: stream shorter than header (%d bytes)", len(data))
	}
	if data[0] != 'E' || data[1] != 'B' {
		return nil, fmt.Errorf("coder: bad magic %q", data[0:2])
	}
	if data[2] != 1 {
		return nil, fmt.Errorf("coder: unsupported version %d", data[2])
	}
	planes := int(data[3])
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	maxExp := int32(binary.LittleEndian.Uint32(data[8:12])) //stlint:ignore trunccast inverse of Encode's uint32(maxExp) reinterpretation; negative exponents are legal
	if n < 0 {
		return nil, fmt.Errorf("coder: negative length")
	}
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}

	br := newBitReader(data[headerSize:])
	// lower[i] is the proven lower bound of |coeff i|; width is the current
	// uncertainty interval. Reconstruction = sign * (lower + width/2).
	lower := make([]float64, n)
	negative := make([]bool, n)
	significant := make([]bool, n)
	threshold := math.Ldexp(1, int(maxExp))

decode:
	for p := 0; p < planes; p++ {
		for i := 0; i < n; i++ {
			if !significant[i] {
				bit, ok := br.readBit()
				if !ok {
					break decode
				}
				if bit == 1 {
					significant[i] = true
					lower[i] = threshold
					sign, ok := br.readBit()
					if !ok {
						break decode
					}
					negative[i] = sign == 1
				}
			} else {
				bit, ok := br.readBit()
				if !ok {
					break decode
				}
				if bit == 1 {
					lower[i] += threshold
				}
			}
		}
		threshold /= 2
	}
	// threshold is now the half-width of each significant coefficient's
	// uncertainty interval times 2 (one halving happened after the last
	// completed pass); reconstruct at interval midpoints.
	for i := 0; i < n; i++ {
		if !significant[i] {
			continue
		}
		v := lower[i] + threshold
		if negative[i] {
			v = -v
		}
		out[i] = v
	}
	return out, nil
}

// EncodedUpperBound returns the worst-case stream size for n coefficients
// at the given plane count: header + (significance+sign+refinement) bits.
func EncodedUpperBound(n, planes int) int {
	bits := n*planes + n // every coefficient could also emit one sign bit
	return headerSize + (bits+7)/8
}

// bitWriter appends bits MSB-first to a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur int
}

func newBitWriter(initial []byte) *bitWriter { return &bitWriter{buf: initial} }

func (w *bitWriter) writeBit(b int) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

func (w *bitWriter) finish() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
	}
	return w.buf
}

// bitReader consumes bits MSB-first.
type bitReader struct {
	buf []byte
	pos int // bit position
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) readBit() (int, bool) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, false
	}
	bit := int(r.buf[byteIdx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, true
}

package coder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randCoeffs(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Heavy-tailed like real wavelet coefficients: most small, few big.
		v := rng.NormFloat64()
		out[i] = v * v * v
	}
	return out
}

func maxErr(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode([]float64{1}, 0); err == nil {
		t.Error("expected error for 0 planes")
	}
	if _, err := Encode([]float64{1}, 65); err == nil {
		t.Error("expected error for 65 planes")
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("expected error for empty stream")
	}
	if _, err := Decode([]byte("XXnot a stream")); err == nil {
		t.Error("expected error for bad magic")
	}
	good, err := Encode([]float64{1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[2] = 9 // version
	if _, err := Decode(bad); err == nil {
		t.Error("expected error for bad version")
	}
}

func TestEmptyAndZeroInputs(t *testing.T) {
	stream, err := Encode(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("decoded %d coefficients from empty input", len(out))
	}
	zeros := make([]float64, 100)
	stream, err = Encode(zeros, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != headerSize {
		t.Errorf("all-zero stream is %d bytes, want header only (%d)", len(stream), headerSize)
	}
	out, err = Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero coefficient %d decoded to %g", i, v)
		}
	}
}

func TestFullDecodeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coeffs := randCoeffs(rng, 500)
	var maxMag float64
	for _, v := range coeffs {
		if m := math.Abs(v); m > maxMag {
			maxMag = m
		}
	}
	for _, planes := range []int{4, 8, 16, 32} {
		stream, err := Encode(coeffs, planes)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		// After p planes the uncertainty is < 2^(maxExp-p+1).
		bound := math.Ldexp(1, int(math.Floor(math.Log2(maxMag)))-planes+1)
		if e := maxErr(coeffs, out); e > bound {
			t.Errorf("planes=%d: max error %.3g exceeds bound %.3g", planes, e, bound)
		}
	}
}

func TestSignsPreserved(t *testing.T) {
	coeffs := []float64{-8, 8, -4, 4, -0.5, 0.5}
	stream, err := Encode(coeffs, 20)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if math.Signbit(out[i]) != math.Signbit(coeffs[i]) {
			t.Errorf("coefficient %d: sign flipped (%g -> %g)", i, coeffs[i], out[i])
		}
	}
}

// The embedded property: decoding longer prefixes never increases the
// reconstruction error.
func TestProgressiveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	coeffs := randCoeffs(rng, 300)
	stream, err := Encode(coeffs, 24)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := math.Inf(1)
	for frac := 1; frac <= 10; frac++ {
		cut := headerSize + (len(stream)-headerSize)*frac/10
		out, err := Decode(stream[:cut])
		if err != nil {
			t.Fatalf("truncated decode at %d bytes: %v", cut, err)
		}
		e := maxErr(coeffs, out)
		if e > prevErr*1.0000001 {
			t.Errorf("error rose from %.4g to %.4g at prefix %d/10", prevErr, e, frac)
		}
		prevErr = e
	}
	if prevErr > 1e-4*absMax(coeffs) {
		t.Errorf("full-stream error %.3g still large", prevErr)
	}
}

func absMax(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Header-only decode yields all zeros (the coarsest valid reconstruction).
func TestHeaderOnlyDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	coeffs := randCoeffs(rng, 50)
	stream, err := Encode(coeffs, 16)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(stream[:headerSize])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("coefficient %d = %g from header-only stream", i, v)
		}
	}
}

func TestEncodedUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 10, 100, 1000} {
		for _, planes := range []int{1, 8, 24} {
			coeffs := randCoeffs(rng, n)
			stream, err := Encode(coeffs, planes)
			if err != nil {
				t.Fatal(err)
			}
			if len(stream) > EncodedUpperBound(n, planes) {
				t.Errorf("n=%d planes=%d: stream %d bytes exceeds bound %d",
					n, planes, len(stream), EncodedUpperBound(n, planes))
			}
		}
	}
}

// Sparse (thresholded) coefficient sets compress far below the upper bound:
// insignificant coefficients cost one bit per plane.
func TestSparseStreamsAreSmall(t *testing.T) {
	coeffs := make([]float64, 4096)
	coeffs[17] = 100
	coeffs[399] = -55
	stream, err := Encode(coeffs, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 4096 coefficients x 16 planes = 8 KiB of bits; should be close to
	// that (the coder has no entropy stage) but decode must be precise.
	out, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[17]-100) > 0.01 || math.Abs(out[399]+55) > 0.01 {
		t.Errorf("sparse decode: got %g, %g", out[17], out[399])
	}
	for i, v := range out {
		if i != 17 && i != 399 && math.Abs(v) > 0.01 {
			t.Fatalf("ghost coefficient %g at %d", v, i)
		}
	}
}

// Property: full round trip error is within the final-plane bound for
// arbitrary inputs.
func TestQuickRoundTripBound(t *testing.T) {
	prop := func(seed int64, nRaw uint8, planesRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%100 + 1
		planes := int(planesRaw)%24 + 8
		coeffs := randCoeffs(rng, n)
		stream, err := Encode(coeffs, planes)
		if err != nil {
			return false
		}
		out, err := Decode(stream)
		if err != nil {
			return false
		}
		mm := absMax(coeffs)
		if mm == 0 {
			return maxErr(coeffs, out) == 0
		}
		bound := math.Ldexp(1, int(math.Floor(math.Log2(mm)))-planes+1)
		return maxErr(coeffs, out) <= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: any truncation point decodes without error (graceful
// degradation, never a crash or garbage).
func TestQuickTruncationSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coeffs := randCoeffs(rng, 120)
	stream, err := Encode(coeffs, 16)
	if err != nil {
		t.Fatal(err)
	}
	mm := absMax(coeffs)
	prop := func(cutRaw uint16) bool {
		cut := headerSize + int(cutRaw)%(len(stream)-headerSize+1)
		out, err := Decode(stream[:cut])
		if err != nil {
			return false
		}
		// Reconstruction must never exceed the data's own magnitude range
		// by more than a factor of 2 (midpoint estimates).
		return absMax(out) <= 2*mm
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode64k(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	coeffs := randCoeffs(rng, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(coeffs, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode64k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	coeffs := randCoeffs(rng, 1<<16)
	stream, err := Encode(coeffs, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(stream); err != nil {
			b.Fatal(err)
		}
	}
}

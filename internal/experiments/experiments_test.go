package experiments

import (
	"bytes"
	"strings"
	"testing"

	"stwave/internal/core"
)

// The experiments are expensive even at test scale, so each Run* result is
// computed once and shared.
var (
	fig2Memo   *Fig2Result
	fig2cMemo  *Fig2cResult
	fig3Memo   *Fig3Result
	table1Memo *Table1Result
	table2Memo *Table2Result
	table3Memo *Table3Result
)

func getFig2(t *testing.T) *Fig2Result {
	t.Helper()
	if fig2Memo == nil {
		r, err := RunFig2(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		fig2Memo = r
	}
	return fig2Memo
}

func getFig2c(t *testing.T) *Fig2cResult {
	t.Helper()
	if fig2cMemo == nil {
		r, err := RunFig2c(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		fig2cMemo = r
	}
	return fig2cMemo
}

func getFig3(t *testing.T) *Fig3Result {
	t.Helper()
	if fig3Memo == nil {
		r, err := RunFig3(TestScale(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		fig3Memo = r
	}
	return fig3Memo
}

func getTable1(t *testing.T) *Table1Result {
	t.Helper()
	if table1Memo == nil {
		r, err := RunTable1(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		table1Memo = r
	}
	return table1Memo
}

func getTable2(t *testing.T) *Table2Result {
	t.Helper()
	if table2Memo == nil {
		r, err := RunTable2(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		table2Memo = r
	}
	return table2Memo
}

func getTable3(t *testing.T) *Table3Result {
	t.Helper()
	if table3Memo == nil {
		r, err := RunTable3(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		table3Memo = r
	}
	return table3Memo
}

func TestResLabel(t *testing.T) {
	if ResLabel(1) != "1" || ResLabel(2) != "1/2" || ResLabel(4) != "1/4" {
		t.Error("resolution labels must match the paper's notation")
	}
}

// Figure 2: every 4D configuration must beat the 3D baseline on NRMSE
// ("all evaluations clearly show a decrease in error when comparing
// spatiotemporal to spatial-only compression").
func TestFig2FourDBeats3D(t *testing.T) {
	r := getFig2(t)
	for _, ratio := range Ratios {
		base := r.Row("3D", ratio)
		if base == nil {
			t.Fatalf("missing 3D row at %g:1", ratio)
		}
		for _, row := range r.Rows {
			if row.Ratio != ratio || row.Label == "3D" {
				continue
			}
			if row.NRMSE >= base.NRMSE {
				t.Errorf("%s at %g:1: NRMSE %.4e not below 3D %.4e", row.Label, ratio, row.NRMSE, base.NRMSE)
			}
		}
	}
}

// Figure 2: error decreases monotonically with compression ratio relaxing
// (8:1 best, 128:1 worst) for every configuration.
func TestFig2ErrorGrowsWithRatio(t *testing.T) {
	r := getFig2(t)
	byLabel := map[string][]Fig2Row{}
	for _, row := range r.Rows {
		byLabel[row.Label] = append(byLabel[row.Label], row)
	}
	for label, rows := range byLabel {
		for i := 1; i < len(rows); i++ {
			if rows[i].Ratio > rows[i-1].Ratio && rows[i].NRMSE < rows[i-1].NRMSE {
				t.Errorf("%s: NRMSE fell from %.4e to %.4e as ratio rose %g->%g",
					label, rows[i-1].NRMSE, rows[i].NRMSE, rows[i-1].Ratio, rows[i].Ratio)
			}
		}
	}
}

// Figure 2 window-size finding: a larger window helps (ws=40 <= ws=10 error
// for the same kernel, averaged over ratios).
func TestFig2LargerWindowHelps(t *testing.T) {
	r := getFig2(t)
	mean := func(label string) float64 {
		var s float64
		n := 0
		for _, row := range r.Rows {
			if row.Label == label {
				s += row.NRMSE
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no rows labeled %q", label)
		}
		return s / float64(n)
	}
	if w40, w10 := mean("4D CDF 9/7 ws=40"), mean("4D CDF 9/7 ws=10"); w40 > w10 {
		t.Errorf("CDF 9/7: window 40 mean NRMSE %.4e worse than window 10 %.4e", w40, w10)
	}
}

// Figure 2 kernel finding: CDF 5/3 beats CDF 9/7 at window 10 (where it
// gets one more transform level).
func TestFig2CDF53WinsAtWindow10(t *testing.T) {
	r := getFig2(t)
	var s97, s53 float64
	n := 0
	for _, ratio := range Ratios {
		r97 := r.Row("4D CDF 9/7 ws=10", ratio)
		r53 := r.Row("4D CDF 5/3 ws=10", ratio)
		if r97 == nil || r53 == nil {
			t.Fatal("missing ws=10 rows")
		}
		s97 += r97.NRMSE
		s53 += r53.NRMSE
		n++
	}
	if s53 >= s97 {
		t.Errorf("CDF 5/3 at ws=10 mean NRMSE %.4e not below CDF 9/7 %.4e (paper: 5/3 superior at window 10)", s53/float64(n), s97/float64(n))
	}
}

// Figure 2c: the 4D benefit must improve as temporal resolution rises —
// res=1 gives lower error than res=1/4 at every ratio.
func TestFig2cFinerResolutionHelps(t *testing.T) {
	r := getFig2c(t)
	for _, ratio := range Ratios {
		full := r.Row(core.Spatiotemporal4D, 1, ratio)
		quarter := r.Row(core.Spatiotemporal4D, 4, ratio)
		if full == nil || quarter == nil {
			t.Fatalf("missing rows at %g:1", ratio)
		}
		if full.NRMSE > quarter.NRMSE {
			t.Errorf("%g:1: res=1 NRMSE %.4e worse than res=1/4 %.4e", ratio, full.NRMSE, quarter.NRMSE)
		}
	}
}

// Figure 2c headline: at base resolution, 4D roughly halves the 3D error
// ("in most cases, both NRMSE and normalized L∞-norm are cut by half").
func TestFig2cFactorOfTwoAtBaseResolution(t *testing.T) {
	r := getFig2c(t)
	halved := 0
	total := 0
	for _, ratio := range Ratios {
		base := r.Row(core.Spatial3D, 1, ratio)
		full := r.Row(core.Spatiotemporal4D, 1, ratio)
		if base == nil || full == nil {
			t.Fatal("missing rows")
		}
		total++
		if full.NRMSE <= base.NRMSE*0.6 {
			halved++
		}
		if full.NRMSE >= base.NRMSE {
			t.Errorf("%g:1: 4D res=1 NRMSE %.4e not below 3D %.4e", ratio, full.NRMSE, base.NRMSE)
		}
	}
	if halved*2 < total {
		t.Errorf("only %d/%d ratios show the ~2x improvement at res=1", halved, total)
	}
}

// Figure 3: on the coherent datasets (Ghost, CloverLeaf) 4D at res=1 beats
// 3D at every ratio; on Tornado the benefit is smaller or absent at coarse
// resolutions — the paper's Section V-E limitation.
func TestFig3CoherentDatasetsBenefit(t *testing.T) {
	r := getFig3(t)
	for _, panel := range []string{"a", "b", "c"} {
		for _, ratio := range Ratios {
			base := r.Row(panel, core.Spatial3D, 1, ratio)
			full := r.Row(panel, core.Spatiotemporal4D, 1, ratio)
			if base == nil || full == nil {
				t.Fatalf("panel %s missing rows at %g:1", panel, ratio)
			}
			if full.NRMSE >= base.NRMSE {
				t.Errorf("panel %s %g:1: 4D res=1 NRMSE %.4e not below 3D %.4e", panel, ratio, full.NRMSE, base.NRMSE)
			}
		}
	}
}

func TestFig3TornadoBenefitSmaller(t *testing.T) {
	r := getFig3(t)
	gain := func(panel string, stride int) float64 {
		var g float64
		n := 0
		for _, ratio := range Ratios {
			base := r.Row(panel, core.Spatial3D, 1, ratio)
			four := r.Row(panel, core.Spatiotemporal4D, stride, ratio)
			if base == nil || four == nil || four.NRMSE == 0 {
				continue
			}
			g += base.NRMSE / four.NRMSE
			n++
		}
		if n == 0 {
			t.Fatalf("no rows for panel %s", panel)
		}
		return g / float64(n)
	}
	ghostGain := gain("a", 1)
	tornadoGain := gain("d", 1)
	if tornadoGain >= ghostGain {
		t.Errorf("Tornado 4D gain %.2fx not below Ghost gain %.2fx (paper: Tornado has less coherence)", tornadoGain, ghostGain)
	}
}

// Figure 3 P2: 4D at 128:1 should be comparable to (or better than) 3D at
// 64:1 on the coherent Ghost data.
func TestFig3P2StorageHalving(t *testing.T) {
	r := getFig3(t)
	base := r.Row("a", core.Spatial3D, 1, 64)
	four := r.Row("a", core.Spatiotemporal4D, 1, 128)
	if base == nil || four == nil {
		t.Fatal("missing rows")
	}
	if four.NRMSE > base.NRMSE*1.5 {
		t.Errorf("P2 violated on Ghost: 4D@128 NRMSE %.4e vs 3D@64 %.4e", four.NRMSE, base.NRMSE)
	}
}

func TestTable1Shape(t *testing.T) {
	r := getTable1(t)
	raw := r.Row("Raw")
	d3 := r.Row("3D")
	d4 := r.Row("4D")
	if raw == nil || d3 == nil || d4 == nil {
		t.Fatal("missing Table I rows")
	}
	// File sizes: compressed = raw/16; 3D and 4D identical budgets.
	if d3.FileSize != d4.FileSize {
		t.Errorf("3D file size %d != 4D %d (same coefficient budget)", d3.FileSize, d4.FileSize)
	}
	if want := raw.FileSize / 16; d4.FileSize != want {
		t.Errorf("4D file size %d, want raw/16 = %d", d4.FileSize, want)
	}
	// 4D pays buffer traffic; 3D and Raw have none.
	if d4.BufferWrite <= 0 || d4.BufferRead <= 0 {
		t.Error("4D must record buffer write and read time")
	}
	if d3.BufferWrite != 0 || raw.BufferWrite != 0 {
		t.Error("3D and Raw must not touch the buffer")
	}
	// Raw has no compute and no error.
	if raw.CompTime != 0 || raw.Error != 0 {
		t.Errorf("Raw row: comp %v, error %g", raw.CompTime, raw.Error)
	}
	// 4D reconstructs more accurately than 3D at the same budget.
	if d4.Error >= d3.Error {
		t.Errorf("4D error %.3e not below 3D %.3e", d4.Error, d3.Error)
	}
	// Projection reproduces the paper's ordering: raw total I/O is the
	// largest; 3D total I/O is tiny; 4D sits between.
	praw := r.ProjectedRow("Raw")
	p3 := r.ProjectedRow("3D")
	p4 := r.ProjectedRow("4D")
	if !(p3.TotalIO < p4.TotalIO && p4.TotalIO < praw.TotalIO) {
		t.Errorf("projected Total I/O ordering wrong: 3D %v, 4D %v, Raw %v", p3.TotalIO, p4.TotalIO, praw.TotalIO)
	}
	// Projected raw perm write should be ~18.9s, 4D buffer W+R ~6.78+6.5s.
	if s := praw.PermWrite.Seconds(); s < 17 || s > 21 {
		t.Errorf("projected raw perm write %.2fs, want ~18.9s", s)
	}
	if s := p4.BufferWrite.Seconds() + p4.BufferRead.Seconds(); s < 12 || s > 15 {
		t.Errorf("projected 4D buffer W+R %.2fs, want ~13.3s", s)
	}
}

func TestTable2Shape(t *testing.T) {
	r := getTable2(t)
	if len(r.Rows) != len(Table2Ratios)*2 {
		t.Fatalf("have %d rows, want %d", len(r.Rows), len(Table2Ratios)*2)
	}
	for _, row := range r.Rows {
		if len(row.Errors) != len(Table2Thresholds) {
			t.Fatalf("row %+v has %d thresholds", row, len(row.Errors))
		}
		// Errors must be valid percentages and monotone non-increasing in D.
		for i, e := range row.Errors {
			if e < 0 || e > 100 {
				t.Errorf("row %g:1 %v: error[%d] = %g out of range", row.Ratio, row.Mode, i, e)
			}
			if i > 0 && e > row.Errors[i-1]+1e-9 {
				t.Errorf("row %g:1 %v: error rises with larger D", row.Ratio, row.Mode)
			}
		}
	}
	// P1: 4D <= 3D at every ratio for the collaborator's threshold D=150
	// (index 2), allowing tiny slack for ties at 0.
	for _, ratio := range Table2Ratios {
		r3 := r.Row(ratio, core.Spatial3D)
		r4 := r.Row(ratio, core.Spatiotemporal4D)
		if r3 == nil || r4 == nil {
			t.Fatal("missing Table II rows")
		}
		if r4.Errors[2] > r3.Errors[2]+1e-9 {
			t.Errorf("%g:1 D=150: 4D error %.2f%% above 3D %.2f%%", ratio, r4.Errors[2], r3.Errors[2])
		}
	}
	// Errors grow with compression ratio for 3D at the tightest threshold.
	prev := -1.0
	for _, ratio := range Table2Ratios {
		e := r.Row(ratio, core.Spatial3D).Errors[0]
		if e < prev-2.0 { // small slack: errors saturate near 100% at D=10
			t.Errorf("3D D=10 error fell from %.2f to %.2f as ratio rose to %g", prev, e, ratio)
		}
		prev = e
	}
}

func TestTable3Shape(t *testing.T) {
	r := getTable3(t)
	if len(r.Rows) != len(Table3Variables)*len(Table3Ratios) {
		t.Fatalf("have %d rows", len(r.Rows))
	}
	// 4D's |error| beats 3D's on the sharp-featured fields at high ratios
	// (the paper's cloud mixing ratio and z-velocity findings).
	for _, variable := range []string{"Cloud Mixing Ratio", "Z-Velocity"} {
		row := r.Row(variable, 128)
		if row == nil {
			t.Fatalf("missing %s 128:1", variable)
		}
		if abs(row.Error4D) >= abs(row.Error3D) {
			t.Errorf("%s 128:1: |4D| %.2f%% not below |3D| %.2f%%", variable, row.Error4D, row.Error3D)
		}
	}
	// 3D errors grow in magnitude with ratio for cloud mixing ratio.
	var prev float64
	for _, ratio := range Table3Ratios {
		row := r.Row("Cloud Mixing Ratio", ratio)
		if abs(row.Error3D) < prev-1.0 {
			t.Errorf("cloud 3D |error| fell sharply from %.2f to %.2f at %g:1", prev, abs(row.Error3D), ratio)
		}
		prev = abs(row.Error3D)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRendering(t *testing.T) {
	var buf bytes.Buffer
	getFig2(t).Write(&buf)
	if !strings.Contains(buf.String(), "Figure 2a/2b") {
		t.Error("fig2 rendering missing title")
	}
	buf.Reset()
	getFig2c(t).Write(&buf)
	if !strings.Contains(buf.String(), "4D res=1/4") {
		t.Error("fig2c rendering missing resolution rows")
	}
	buf.Reset()
	getFig3(t).Write(&buf)
	if !strings.Contains(buf.String(), "Subfigure 3f") {
		t.Error("fig3 rendering missing panels")
	}
	buf.Reset()
	getTable1(t).Write(&buf)
	if !strings.Contains(buf.String(), "Raw") || !strings.Contains(buf.String(), "projected") {
		t.Error("table1 rendering incomplete")
	}
	buf.Reset()
	getTable2(t).Write(&buf)
	if !strings.Contains(buf.String(), "D=150") {
		t.Error("table2 rendering missing thresholds")
	}
	buf.Reset()
	getTable3(t).Write(&buf)
	if !strings.Contains(buf.String(), "Cloud Mixing Ratio") {
		t.Error("table3 rendering missing variables")
	}
}

func TestRunFig3SinglePanel(t *testing.T) {
	r, err := RunFig3(TestScale(), []string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Panel != "a" {
			t.Fatalf("unexpected panel %q", row.Panel)
		}
	}
	if _, err := RunFig3(TestScale(), []string{"zz"}, nil); err == nil {
		t.Error("expected error for unknown panel")
	}
}

package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/fbits"
	"stwave/internal/grid"
)

// Fig3Panel identifies one subfigure of Figure 3.
type Fig3Panel struct {
	// Key is the subfigure letter (a-f).
	Key string
	// Dataset and Variable label the panel.
	Dataset, Variable string
}

// Fig3Panels lists the six panels in the paper's order.
var Fig3Panels = []Fig3Panel{
	{"a", "Ghost", "velocity-x"},
	{"b", "CloverLeaf3D", "velocity-x"},
	{"c", "CloverLeaf3D", "energy"},
	{"d", "Tornado", "velocity-x"},
	{"e", "Tornado", "enstrophy"},
	{"f", "Tornado", "cloud-ratio"},
}

// Fig3Row is one bar: (panel, config, ratio) with both metrics.
type Fig3Row struct {
	Panel     string
	Mode      core.Mode
	ResStride int // meaningful for 4D rows
	Ratio     float64
	NRMSE     float64
	NLInf     float64
}

// Fig3Result aggregates the multi-dataset study.
type Fig3Result struct {
	Rows []Fig3Row
}

// panelSeries fetches the slice sequence for a panel.
func panelSeries(sc Scale, key string) (*grid.Window, error) {
	switch key {
	case "a":
		return GhostSeries(sc, GhostVelocityX)
	case "b":
		return CloverSeries(sc, CloverVelocityX)
	case "c":
		return CloverSeries(sc, CloverEnergy)
	case "d":
		return TornadoSeries(sc, TornadoVelocityX)
	case "e":
		return TornadoSeries(sc, TornadoEnstrophy)
	case "f":
		return TornadoSeries(sc, TornadoCloudRatio)
	}
	return nil, fmt.Errorf("experiments: unknown Figure 3 panel %q", key)
}

// RunFig3 reproduces all six panels of Figure 3: each dataset/variable at
// the sweet-spot 4D configuration across temporal resolutions, against the
// 3D baseline, across ratios.
func RunFig3(sc Scale, panels []string, progress io.Writer) (*Fig3Result, error) {
	if panels == nil {
		for _, p := range Fig3Panels {
			panels = append(panels, p.Key)
		}
	}
	res := &Fig3Result{}
	for _, key := range panels {
		seq, err := panelSeries(sc, key)
		if err != nil {
			return nil, err
		}
		fprintf(progress, "fig3: panel %s (%d slices of %v)\n", key, seq.Len(), seq.Dims)
		for _, ratio := range Ratios {
			nr, nl, err := EvalWindowed(seq, BaseOptions3D(ratio, sc.Workers))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig3Row{Panel: key, Mode: core.Spatial3D, ResStride: 1, Ratio: ratio, NRMSE: nr, NLInf: nl})
			for _, stride := range Resolutions {
				sub, err := seq.Subsample(stride)
				if err != nil {
					return nil, err
				}
				nr, nl, err := EvalWindowed(sub, BaseOptions4D(ratio, 20, sc.Workers))
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Fig3Row{Panel: key, Mode: core.Spatiotemporal4D, ResStride: stride, Ratio: ratio, NRMSE: nr, NLInf: nl})
			}
		}
	}
	return res, nil
}

// Row finds the entry for (panel, mode, stride, ratio), or nil.
func (r *Fig3Result) Row(panel string, mode core.Mode, stride int, ratio float64) *Fig3Row {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Panel == panel && row.Mode == mode && row.ResStride == stride && fbits.Eq(row.Ratio, ratio) {
			return row
		}
	}
	return nil
}

// Write renders the result grouped by panel, the paper's layout.
func (r *Fig3Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 3 — NRMSE and normalized L-inf across data sets\n")
	var lastPanel string
	var lastRatio float64 = -1
	for _, row := range r.Rows {
		if row.Panel != lastPanel {
			for _, p := range Fig3Panels {
				if p.Key == row.Panel {
					fmt.Fprintf(w, "== Subfigure 3%s: %s %s ==\n", p.Key, p.Dataset, p.Variable)
				}
			}
			lastPanel = row.Panel
			lastRatio = -1
		}
		if !fbits.Eq(row.Ratio, lastRatio) {
			fmt.Fprintf(w, "---- %g:1 ----\n", row.Ratio)
			lastRatio = row.Ratio
		}
		label := "3D"
		if row.Mode == core.Spatiotemporal4D {
			label = "4D res=" + ResLabel(row.ResStride)
		}
		fmt.Fprintf(w, "%-12s %12.4e %12.4e\n", label, row.NRMSE, row.NLInf)
	}
}

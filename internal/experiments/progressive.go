package experiments

import (
	"bytes"
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/transform"
)

// ProgressiveLevelRow is one refinement step of the coarse-first delivery
// study: how many container bytes a reader must fetch to reconstruct
// through this level, and the quality it gets for them.
type ProgressiveLevelRow struct {
	// Level is the deepest detail level decoded (0 = approximation only).
	Level int
	// Dims is the reconstruction resolution at this level.
	Dims grid.Dims
	// Bytes is the serialized-window prefix a reader must fetch to decode
	// through this level (header + slice times + level table + groups 0..Level).
	Bytes int64
	// FracOfFull is Bytes over the full serialized window size.
	FracOfFull float64
	// PSNR is reconstruction quality in dB. Intermediate levels are scored
	// against the level-matched coarse reference (CoarseApproximation of
	// the original at the same depth — the ground truth a preview
	// approximates); the final level is scored against the original.
	PSNR float64
}

// ProgressiveROIRow is one region of the error-bounded refinement study:
// the bound the encoder was asked to hold there and the error it achieved.
type ProgressiveROIRow struct {
	Region  string
	Bound   float64
	MaxErr  float64
	PSNR    float64
	Samples int64
}

// ProgressiveResult holds the coarse-first delivery study: the
// bytes-vs-quality ladder of the level-major layout, its size overhead
// against the legacy layout, and the ROI-vs-background error split of the
// error-bounded mode.
type ProgressiveResult struct {
	Dims   grid.Dims
	Slices int
	Ratio  float64
	// LegacyBytes / FullBytes are the serialized window sizes of the v3
	// and v4 (level-major) layouts of the identical coefficient stream.
	LegacyBytes, FullBytes int64
	// PreviewGain is FullBytes over the level-0 prefix: how many times
	// fewer bytes a first usable preview costs than a full-window fetch.
	PreviewGain float64
	// LegacyPSNR / FinalPSNR are full-reconstruction qualities of the two
	// layouts — equal, because the layout only reorders the stream.
	LegacyPSNR, FinalPSNR float64
	Levels                []ProgressiveLevelRow
	// ROIBounds describes the error-bounded run: background bound, ROI
	// box bound, and the achieved split.
	ROIBackgroundBound, ROIBound float64
	ROIBytes                     int64
	ROI                          []ProgressiveROIRow
}

// RunProgressiveStudy measures what the level-major (v4) layout buys a
// streaming reader on the Ghost enstrophy fixture at twice the scale's
// resolution (a deeper transform gives the layout more levels to
// stream): bytes-to-first-preview versus a full-window fetch, the
// PSNR-vs-bytes refinement ladder, and — in error-bounded mode — the
// achieved ROI versus background error split.
func RunProgressiveStudy(sc Scale, progress io.Writer) (*ProgressiveResult, error) {
	sc.GhostN *= 2 // deeper spatial transform: more level groups to stream
	const slices = 20
	if sc.GhostSlices > slices {
		sc.GhostSlices = slices // the study needs one window, not the full series
	}
	seq, err := GhostSeries(sc, GhostEnstrophy)
	if err != nil {
		return nil, err
	}
	if seq.Len() < slices {
		return nil, fmt.Errorf("experiments: need %d slices, have %d", slices, seq.Len())
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < slices; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, err
		}
	}
	const ratio = 32
	res := &ProgressiveResult{Dims: seq.Dims, Slices: slices, Ratio: ratio}

	// Legacy (v3) baseline: same coefficients, contiguous layout.
	fprintf(progress, "progressive: legacy baseline\n")
	legacyOpts := BaseOptions4D(ratio, slices, sc.Workers)
	legacyComp, err := core.New(legacyOpts)
	if err != nil {
		return nil, err
	}
	legacyRecon, legacyCW, err := legacyComp.RoundTrip(win)
	if err != nil {
		return nil, err
	}
	res.LegacyBytes, err = serializedSize(legacyCW)
	if err != nil {
		return nil, err
	}
	res.LegacyPSNR, err = windowPSNR(win, legacyRecon)
	if err != nil {
		return nil, err
	}

	// Progressive (v4): serialize once, then decode every byte prefix the
	// level table addresses, exactly as a remote reader would fetch them.
	fprintf(progress, "progressive: level ladder\n")
	progOpts := legacyOpts
	progOpts.Progressive = true
	progComp, err := core.New(progOpts)
	if err != nil {
		return nil, err
	}
	progCW, err := progComp.CompressWindow(win)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := progCW.WriteTo(&buf); err != nil {
		return nil, err
	}
	encoded := buf.Bytes()
	res.FullBytes = int64(len(encoded))
	_, table, payloadStart, err := core.ReadWindowLevelTable(bytes.NewReader(encoded))
	if err != nil {
		return nil, err
	}
	L := len(table.Extents) - 1 // deepest detail level
	for K := 0; K <= L; K++ {
		prefix := payloadStart + table.PrefixBytes(K)
		cw, err := core.ReadCompressedWindowLevels(bytes.NewReader(encoded[:prefix]), K)
		if err != nil {
			return nil, err
		}
		recon, err := core.DecompressLevels(cw, K)
		if err != nil {
			return nil, err
		}
		var psnr float64
		if K == L {
			psnr, err = windowPSNR(win, recon)
		} else {
			psnr, err = coarsePSNR(win, recon, progOpts, L-K, sc.Workers)
		}
		if err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, ProgressiveLevelRow{
			Level: K, Dims: recon.Dims, Bytes: prefix,
			FracOfFull: float64(prefix) / float64(res.FullBytes),
			PSNR:       psnr,
		})
		fprintf(progress, "progressive: level %d/%d (%v, %d bytes)\n", K, L, recon.Dims, prefix)
	}
	res.PreviewGain = float64(res.FullBytes) / float64(res.Levels[0].Bytes)
	res.FinalPSNR = res.Levels[len(res.Levels)-1].PSNR

	// Error-bounded refinement: a centered ROI box held to a 10x tighter
	// bound than the background, both bounds relative to the data range.
	fprintf(progress, "progressive: error-bounded ROI split\n")
	lo, hi := win.Slices[0].Data[0], win.Slices[0].Data[0]
	for _, s := range win.Slices {
		for _, v := range s.Data {
			lo, hi = min(lo, v), max(hi, v)
		}
	}
	d := win.Dims
	roi := &core.ROIBounds{
		X0: d.Nx / 4, Y0: d.Ny / 4, Z0: d.Nz / 4,
		X1: 3 * d.Nx / 4, Y1: 3 * d.Ny / 4, Z1: 3 * d.Nz / 4,
	}
	res.ROIBackgroundBound = 0.02 * (hi - lo)
	res.ROIBound = 0.002 * (hi - lo)
	roi.MaxErr = res.ROIBound
	roiOpts := progOpts
	roiOpts.MaxErr = res.ROIBackgroundBound
	roiOpts.ROI = roi
	roiComp, err := core.New(roiOpts)
	if err != nil {
		return nil, err
	}
	roiRecon, roiCW, err := roiComp.RoundTrip(win)
	if err != nil {
		return nil, err
	}
	res.ROIBytes, err = serializedSize(roiCW)
	if err != nil {
		return nil, err
	}
	inAcc, outAcc := metrics.NewAccumulator(), metrics.NewAccumulator()
	var inMax, outMax float64
	var inN, outN int64
	for i := range win.Slices {
		orig, rec := win.Slices[i], roiRecon.Slices[i]
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					idx := orig.Index(x, y, z)
					diff := rec.Data[idx] - orig.Data[idx]
					if diff < 0 {
						diff = -diff
					}
					if roi.Contains(x, y, z) {
						inMax = max(inMax, diff)
						inN++
						if err := inAcc.Add(orig.Data[idx:idx+1], rec.Data[idx:idx+1]); err != nil {
							return nil, err
						}
					} else {
						outMax = max(outMax, diff)
						outN++
						if err := outAcc.Add(orig.Data[idx:idx+1], rec.Data[idx:idx+1]); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	res.ROI = []ProgressiveROIRow{
		{Region: "ROI", Bound: res.ROIBound, MaxErr: inMax, PSNR: inAcc.PSNR(), Samples: inN},
		{Region: "background", Bound: res.ROIBackgroundBound, MaxErr: outMax, PSNR: outAcc.PSNR(), Samples: outN},
	}
	return res, nil
}

// serializedSize measures a window's on-wire size without keeping the bytes.
func serializedSize(cw *core.CompressedWindow) (int64, error) {
	var buf bytes.Buffer
	n, err := cw.WriteTo(&buf)
	return n, err
}

// windowPSNR scores a reconstruction against the original, slice by slice.
func windowPSNR(orig, recon *grid.Window) (float64, error) {
	ac := metrics.NewAccumulator()
	for i := range orig.Slices {
		if err := ac.Add(orig.Slices[i].Data, recon.Slices[i].Data); err != nil {
			return 0, err
		}
	}
	return ac.PSNR(), nil
}

// coarsePSNR scores a partial reconstruction against the level-matched
// coarse reference of the original — the ground truth a depth-limited
// preview approximates.
func coarsePSNR(orig, recon *grid.Window, opts core.Options, skippedLevels, workers int) (float64, error) {
	ac := metrics.NewAccumulator()
	for i := range orig.Slices {
		ref, err := transform.CoarseApproximation(orig.Slices[i], opts.SpatialKernel, skippedLevels, workers)
		if err != nil {
			return 0, err
		}
		if err := ac.Add(ref.Data, recon.Slices[i].Data); err != nil {
			return 0, err
		}
	}
	return ac.PSNR(), nil
}

// Write renders the study: the refinement ladder, the preview headline,
// and the ROI error split.
func (r *ProgressiveResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Progressive coarse-first delivery (%v x %d slices, Ghost enstrophy, ratio %g:1)\n",
		r.Dims, r.Slices, r.Ratio)
	fmt.Fprintf(w, "layout overhead: legacy %s -> progressive %s (%+.1f%%)\n",
		fmtBytes(r.LegacyBytes), fmtBytes(r.FullBytes),
		100*(float64(r.FullBytes)/float64(r.LegacyBytes)-1))
	fmt.Fprintf(w, "%7s %14s %12s %10s %12s\n", "Level", "Dims", "Bytes", "Of full", "PSNR")
	for _, row := range r.Levels {
		ref := "vs coarse ref"
		if row.Level == len(r.Levels)-1 {
			ref = "vs original"
		}
		fmt.Fprintf(w, "%7d %14v %12s %9.1f%% %9.2fdB  %s\n",
			row.Level, row.Dims, fmtBytes(row.Bytes), 100*row.FracOfFull, row.PSNR, ref)
	}
	fmt.Fprintf(w, "first usable preview: %s, %.1fx fewer bytes than the %s full fetch\n",
		fmtBytes(r.Levels[0].Bytes), r.PreviewGain, fmtBytes(r.FullBytes))
	fmt.Fprintf(w, "final PSNR %.2fdB (legacy layout %.2fdB)\n", r.FinalPSNR, r.LegacyPSNR)
	fmt.Fprintf(w, "error-bounded ROI refinement (%s encoded):\n", fmtBytes(r.ROIBytes))
	fmt.Fprintf(w, "%12s %12s %12s %10s %12s\n", "Region", "Bound", "Max err", "PSNR", "Samples")
	for _, row := range r.ROI {
		fmt.Fprintf(w, "%12s %12.3e %12.3e %8.2fdB %12d\n",
			row.Region, row.Bound, row.MaxErr, row.PSNR, row.Samples)
	}
}

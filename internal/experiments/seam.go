package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/fbits"
	"stwave/internal/grid"
	"stwave/internal/metrics"
)

// SeamResult profiles reconstruction error as a function of a slice's
// position inside its compression window. Because the temporal transform
// uses symmetric extension at window edges, boundary slices see less
// genuine temporal context than interior ones — the window-seam artifact
// that windowed processing (Section IV-A) trades for bounded memory.
type SeamResult struct {
	WindowSize int
	Ratio      float64
	// PerPosition[i] is the NRMSE of all slices that sat at position i of
	// their window, aggregated across windows.
	PerPosition []float64
}

// RunSeamProfile compresses the Ghost velocity series in windows and
// reports NRMSE by window position.
func RunSeamProfile(sc Scale, windowSize int, ratio float64, progress io.Writer) (*SeamResult, error) {
	seq, err := GhostSeries(sc, GhostVelocityX)
	if err != nil {
		return nil, err
	}
	// Use only full windows so every position has the same sample count.
	full := (seq.Len() / windowSize) * windowSize
	if full < windowSize {
		return nil, fmt.Errorf("experiments: need at least %d slices, have %d", windowSize, seq.Len())
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < full; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, err
		}
	}
	opts := BaseOptions4D(ratio, windowSize, sc.Workers)
	chunks, err := win.Partition(windowSize)
	if err != nil {
		return nil, err
	}
	accs := make([]*metrics.Accumulator, windowSize)
	for i := range accs {
		accs[i] = metrics.NewAccumulator()
	}
	comp, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	for ci, chunk := range chunks {
		fprintf(progress, "seam: window %d/%d\n", ci+1, len(chunks))
		recon, _, err := comp.RoundTrip(chunk)
		if err != nil {
			return nil, err
		}
		for i := range chunk.Slices {
			if err := accs[i].Add(chunk.Slices[i].Data, recon.Slices[i].Data); err != nil {
				return nil, err
			}
		}
	}
	res := &SeamResult{WindowSize: windowSize, Ratio: ratio}
	for _, ac := range accs {
		res.PerPosition = append(res.PerPosition, ac.NRMSE())
	}
	return res, nil
}

// EdgeToCenterRatio summarizes the seam artifact: mean NRMSE of the first
// and last positions over the mean of the two central positions.
func (r *SeamResult) EdgeToCenterRatio() float64 {
	n := len(r.PerPosition)
	if n < 4 {
		return 1
	}
	edge := (r.PerPosition[0] + r.PerPosition[n-1]) / 2
	center := (r.PerPosition[n/2-1] + r.PerPosition[n/2]) / 2
	if fbits.Zero(center) {
		return 1
	}
	return edge / center
}

// Write renders the per-position profile.
func (r *SeamResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Window-seam profile — Ghost velocity-x, window %d, %g:1 (NRMSE by window position)\n",
		r.WindowSize, r.Ratio)
	for i, e := range r.PerPosition {
		fmt.Fprintf(w, "  position %2d: %12.4e\n", i, e)
	}
	fmt.Fprintf(w, "edge/center error ratio: %.2f\n", r.EdgeToCenterRatio())
}

package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/fbits"
	"stwave/internal/wavelet"
)

// Fig2Row is one bar of Figure 2a/2b: a (configuration, ratio) cell with
// both error metrics.
type Fig2Row struct {
	// Label is "3D" for the baseline or "4D k=<kernel> ws=<n>".
	Label      string
	Kernel     wavelet.Kernel
	WindowSize int // 0 for the 3D baseline
	Ratio      float64
	NRMSE      float64
	NLInf      float64
}

// Fig2Result aggregates the kernel/window study.
type Fig2Result struct {
	Rows []Fig2Row
}

// WindowSizes are the paper's studied temporal window sizes.
var WindowSizes = []int{10, 20, 40}

// RunFig2 reproduces Figures 2a and 2b: Ghost X-velocity at base temporal
// resolution, 3D baseline vs 4D with both kernels at window sizes 10/20/40,
// across the compression ratios.
func RunFig2(sc Scale, progress io.Writer) (*Fig2Result, error) {
	seq, err := GhostSeries(sc, GhostVelocityX)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{}
	for _, ratio := range Ratios {
		fprintf(progress, "fig2: ratio %g:1\n", ratio)
		// 3D baseline.
		nr, nl, err := EvalWindowed(seq, BaseOptions3D(ratio, sc.Workers))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig2Row{
			Label: "3D", Kernel: wavelet.CDF97, Ratio: ratio, NRMSE: nr, NLInf: nl,
		})
		// 4D sweeps.
		for _, kernel := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53} {
			for _, ws := range WindowSizes {
				opts := BaseOptions4D(ratio, ws, sc.Workers)
				opts.TemporalKernel = kernel
				nr, nl, err := EvalWindowed(seq, opts)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Fig2Row{
					Label:      fmt.Sprintf("4D %s ws=%d", kernel, ws),
					Kernel:     kernel,
					WindowSize: ws,
					Ratio:      ratio,
					NRMSE:      nr,
					NLInf:      nl,
				})
			}
		}
	}
	return res, nil
}

// Row finds the entry for a configuration, or nil.
func (r *Fig2Result) Row(label string, ratio float64) *Fig2Row {
	for i := range r.Rows {
		if r.Rows[i].Label == label && fbits.Eq(r.Rows[i].Ratio, ratio) {
			return &r.Rows[i]
		}
	}
	return nil
}

// Write renders the result in the layout of Figure 2a/2b: ratios grouped,
// the 3D baseline leftmost.
func (r *Fig2Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 2a/2b — wavelet kernel and window size (Ghost velocity-x, res=1)\n")
	fmt.Fprintf(w, "%-18s %10s %12s %12s\n", "config", "ratio", "NRMSE", "L-inf")
	var last float64 = -1
	for _, row := range r.Rows {
		if !fbits.Eq(row.Ratio, last) {
			fmt.Fprintf(w, "---- %g:1 ----\n", row.Ratio)
			last = row.Ratio
		}
		fmt.Fprintf(w, "%-18s %9g:1 %12.4e %12.4e\n", row.Label, row.Ratio, row.NRMSE, row.NLInf)
	}
}

// Fig2cRow is one bar of Figure 2c: temporal resolution vs error.
type Fig2cRow struct {
	// Mode is "3D" or "4D".
	Mode core.Mode
	// ResStride is the temporal subsample stride (1, 2, 4).
	ResStride int
	Ratio     float64
	NRMSE     float64
	NLInf     float64
}

// Fig2cResult aggregates the temporal-resolution study.
type Fig2cResult struct {
	Rows []Fig2cRow
}

// RunFig2c reproduces Figure 2c: the sweet-spot configuration (CDF 9/7,
// window 20) on Ghost at temporal resolutions 1, 1/2, 1/4, against the 3D
// baseline at base resolution.
func RunFig2c(sc Scale, progress io.Writer) (*Fig2cResult, error) {
	seq, err := GhostSeries(sc, GhostVelocityX)
	if err != nil {
		return nil, err
	}
	res := &Fig2cResult{}
	for _, ratio := range Ratios {
		fprintf(progress, "fig2c: ratio %g:1\n", ratio)
		nr, nl, err := EvalWindowed(seq, BaseOptions3D(ratio, sc.Workers))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig2cRow{Mode: core.Spatial3D, ResStride: 1, Ratio: ratio, NRMSE: nr, NLInf: nl})
		for _, stride := range Resolutions {
			sub, err := seq.Subsample(stride)
			if err != nil {
				return nil, err
			}
			nr, nl, err := EvalWindowed(sub, BaseOptions4D(ratio, 20, sc.Workers))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig2cRow{Mode: core.Spatiotemporal4D, ResStride: stride, Ratio: ratio, NRMSE: nr, NLInf: nl})
		}
	}
	return res, nil
}

// Row finds the entry for a (mode, stride, ratio), or nil.
func (r *Fig2cResult) Row(mode core.Mode, stride int, ratio float64) *Fig2cRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Mode == mode && row.ResStride == stride && fbits.Eq(row.Ratio, ratio) {
			return row
		}
	}
	return nil
}

// Write renders Figure 2c.
func (r *Fig2cResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 2c — temporal resolution (Ghost velocity-x, CDF 9/7, window 20)\n")
	fmt.Fprintf(w, "%-12s %10s %12s %12s\n", "config", "ratio", "NRMSE", "L-inf")
	var last float64 = -1
	for _, row := range r.Rows {
		if !fbits.Eq(row.Ratio, last) {
			fmt.Fprintf(w, "---- %g:1 ----\n", row.Ratio)
			last = row.Ratio
		}
		label := "3D"
		if row.Mode == core.Spatiotemporal4D {
			label = "4D res=" + ResLabel(row.ResStride)
		}
		fmt.Fprintf(w, "%-12s %9g:1 %12.4e %12.4e\n", label, row.Ratio, row.NRMSE, row.NLInf)
	}
}

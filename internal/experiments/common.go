// Package experiments reproduces every figure and table of the paper's
// evaluation (Sections V and VI): the kernel/window study (Fig. 2a/2b), the
// temporal-resolution study (Fig. 2c), the multi-dataset study (Fig. 3),
// the performance table (Table I), the pathline analysis (Table II), and
// the isosurface analysis (Table III).
//
// Each experiment is a pure function from a Scale (grid sizes, slice
// counts, worker budget) to a typed result, plus a text renderer that
// prints rows shaped like the paper's. Absolute error values differ from
// the paper's — the substrates are our own simulators at laptop-scale
// grids — but the comparative structure (who wins, by what factor, where
// the benefit decays) is the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/wavelet"
)

// Scale bundles the experiment sizing knobs so the full suite can run at
// test scale (seconds) or at a heavier benchmark scale.
type Scale struct {
	// GhostN is the Ghost solver resolution (power of two).
	GhostN int
	// GhostSlices is the number of base-cadence Ghost slices generated.
	GhostSlices int
	// GhostOutputEvery is the solver-steps-per-slice at base cadence
	// (the paper's "every 100th simulation cycle" knob).
	GhostOutputEvery int
	// CloverN is the CloverLeaf cell count per axis.
	CloverN int
	// CloverSlices is the number of CloverLeaf slices generated.
	CloverSlices int
	// CloverOutputEvery is solver steps per slice.
	CloverOutputEvery int
	// TornadoNx/Ny/Nz are the tornado grid extents.
	TornadoNx, TornadoNy, TornadoNz int
	// TornadoSlices is the slice count at base cadence (1 s).
	TornadoSlices int
	// Workers bounds transform parallelism.
	Workers int
	// PathlineDt is the RK4 step for Table II (the paper uses 0.01 s).
	PathlineDt float64
	// PathlineSeedsPerRake is the particles per rake (paper: 48).
	PathlineSeedsPerRake int
}

// TestScale returns a configuration sized to finish the whole suite in
// seconds, for use in go test.
func TestScale() Scale {
	return Scale{
		GhostN: 16, GhostSlices: 40, GhostOutputEvery: 2,
		CloverN: 12, CloverSlices: 40, CloverOutputEvery: 2,
		TornadoNx: 20, TornadoNy: 20, TornadoNz: 14, TornadoSlices: 40,
		Workers:    0,
		PathlineDt: 0.2, PathlineSeedsPerRake: 8,
	}
}

// DefaultScale returns the configuration the stbench binary uses: large
// enough for stable statistics, small enough for a laptop.
func DefaultScale() Scale {
	return Scale{
		GhostN: 32, GhostSlices: 80, GhostOutputEvery: 2,
		CloverN: 24, CloverSlices: 80, CloverOutputEvery: 3,
		TornadoNx: 36, TornadoNy: 36, TornadoNz: 24, TornadoSlices: 80,
		Workers:    0,
		PathlineDt: 0.05, PathlineSeedsPerRake: 16,
	}
}

// Ratios are the paper's compression ratios (Section V-A4).
var Ratios = []float64{8, 16, 32, 64, 128}

// Resolutions are the paper's temporal resolutions as subsample strides:
// res=1 is stride 1, res=1/2 stride 2, res=1/4 stride 4.
var Resolutions = []int{1, 2, 4}

// ResLabel renders a stride as the paper's resolution notation.
func ResLabel(stride int) string {
	if stride == 1 {
		return "1"
	}
	return fmt.Sprintf("1/%d", stride)
}

// EvalWindowed compresses a slice sequence in windows and accumulates
// NRMSE / normalized L-inf against the originals over the whole sequence.
func EvalWindowed(seq *grid.Window, opts core.Options) (nrmse, nlinf float64, err error) {
	comp, err := core.New(opts)
	if err != nil {
		return 0, 0, err
	}
	windowSize := opts.WindowSize
	if opts.Mode == core.Spatial3D {
		windowSize = 1
	}
	chunks, err := seq.Partition(windowSize)
	if err != nil {
		return 0, 0, err
	}
	ac := metrics.NewAccumulator()
	for _, chunk := range chunks {
		recon, _, err := comp.RoundTrip(chunk)
		if err != nil {
			return 0, 0, err
		}
		for i := range chunk.Slices {
			if err := ac.Add(chunk.Slices[i].Data, recon.Slices[i].Data); err != nil {
				return 0, 0, err
			}
		}
	}
	return ac.NRMSE(), ac.NLInf(), nil
}

// BaseOptions4D returns the paper's sweet-spot 4D configuration at a given
// ratio and window size.
func BaseOptions4D(ratio float64, windowSize int, workers int) core.Options {
	o := core.DefaultOptions()
	o.Ratio = ratio
	o.WindowSize = windowSize
	o.Workers = workers
	return o
}

// BaseOptions3D returns the paper's 3D baseline (CDF 9/7 spatial only).
func BaseOptions3D(ratio float64, workers int) core.Options {
	return core.Options{
		Mode:          core.Spatial3D,
		SpatialKernel: wavelet.CDF97,
		Ratio:         ratio,
		SpatialLevels: -1,
		Workers:       workers,
	}
}

// memoize caches expensive dataset generation keyed by a label, so multiple
// experiments sharing a scale reuse the same slices.
type memoCache struct {
	mu sync.Mutex
	m  map[string]*grid.Window
}

var datasets = memoCache{m: make(map[string]*grid.Window)}

func (c *memoCache) get(key string, gen func() (*grid.Window, error)) (*grid.Window, error) {
	c.mu.Lock()
	if w, ok := c.m[key]; ok {
		c.mu.Unlock()
		return w, nil
	}
	c.mu.Unlock()
	w, err := gen()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = w
	c.mu.Unlock()
	return w, nil
}

// ClearCache drops all memoized datasets (used by benchmarks that want to
// measure generation cost).
func ClearCache() {
	datasets.mu.Lock()
	datasets.m = make(map[string]*grid.Window)
	datasets.mu.Unlock()
}

// fprintf writes formatted output, ignoring nil writers.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

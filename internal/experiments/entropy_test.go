package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"stwave/internal/codec"
	"stwave/internal/core"
	"stwave/internal/entropy"
	"stwave/internal/fbits"
	"stwave/internal/grid"
)

var entropyMemo *EntropyResult

func getEntropy(t *testing.T) *EntropyResult {
	t.Helper()
	if entropyMemo == nil {
		r, err := RunEntropyStudy(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		entropyMemo = r
	}
	return entropyMemo
}

// TestEntropyStudyAcceptance is the PR acceptance bar: on the Table-1
// fixture the entropy backend must land at least 1.5x smaller than the
// sparse backend at matched reconstruction quality (PSNR within 1 dB)
// at every paper ratio.
func TestEntropyStudyAcceptance(t *testing.T) {
	r := getEntropy(t)
	if len(r.Rows) != len(Ratios) {
		t.Fatalf("study has %d rows, want %d", len(r.Rows), len(Ratios))
	}
	for _, row := range r.Rows {
		if row.SizeGain < 1.5 {
			t.Errorf("ratio %g: entropy gain %.2fx, want >= 1.5x (sparse %d B, entropy %d B)",
				row.Ratio, row.SizeGain, row.SparseBytes, row.EntropyBytes)
		}
		if d := math.Abs(row.SparsePSNR - row.EntropyPSNR); d > 1.0 {
			t.Errorf("ratio %g: PSNR mismatch %.2f dB (sparse %.2f, entropy %.2f); quantization noise must stay below threshold error",
				row.Ratio, d, row.SparsePSNR, row.EntropyPSNR)
		}
	}
}

func TestEntropyStudyWrite(t *testing.T) {
	var buf bytes.Buffer
	getEntropy(t).Write(&buf)
	out := buf.String()
	for _, want := range []string{"Entropy vs sparse", "Gain", "PSNR entropy"} {
		if !strings.Contains(out, want) {
			t.Errorf("study output missing %q:\n%s", want, out)
		}
	}
}

// TestEntropyLosslessBitIdenticalOnFixture is the property test on the
// Table-1 fixture: the lossless entropy backend must reconstruct the
// same window bit-for-bit as the sparse backend — both store exactly
// the float32-rounded retained coefficients, so any divergence means an
// encoding bug, not quantization.
func TestEntropyLosslessBitIdenticalOnFixture(t *testing.T) {
	seq, err := GhostSeries(TestScale(), GhostEnstrophy)
	if err != nil {
		t.Fatal(err)
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < 20; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			t.Fatal(err)
		}
	}

	roundTrip := func(cdc codec.Codec) *grid.Window {
		t.Helper()
		opts := BaseOptions4D(16, 20, 0)
		opts.Codec = cdc
		comp, err := core.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := comp.RoundTrip(win)
		if err != nil {
			t.Fatal(err)
		}
		return recon
	}

	lossless, err := codec.EntropyWith(entropy.Params{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	sparse := roundTrip(codec.Default())
	ent := roundTrip(lossless)
	for i := range sparse.Slices {
		for j, sv := range sparse.Slices[i].Data {
			if ev := ent.Slices[i].Data[j]; !fbits.Same(sv, ev) {
				t.Fatalf("slice %d sample %d: sparse %x, entropy-lossless %x", i, j,
					math.Float64bits(sv), math.Float64bits(ev))
			}
		}
	}
}

package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/fbits"
	"stwave/internal/flow"
	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// FTLERow is one (ratio, mode) cell of the FTLE study.
type FTLERow struct {
	Ratio float64
	Mode  core.Mode
	// MeanAbsDiff is the mean |FTLE - FTLE_baseline| over the seed plane.
	MeanAbsDiff float64
}

// FTLEResult is the finite-time-Lyapunov-exponent extension study.
type FTLEResult struct {
	BaselineMax float64
	Rows        []FTLERow
}

// RunFTLE extends the paper's Section VI with a finite-time Lyapunov
// exponent analysis — the canonical "sensitive to cumulative errors over
// time" computation its introduction motivates. A seed plane near the
// tornado core is advected through original, 3D-, and 4D-compressed winds;
// the error is the mean absolute FTLE difference against the original.
func RunFTLE(sc Scale, progress io.Writer) (*FTLEResult, error) {
	slices := sc.TornadoSlices / 2
	if slices < 20 {
		slices = 20
	}
	uSeq, vSeq, wSeq, err := TornadoVelocitySeries(sc, slices)
	if err != nil {
		return nil, err
	}
	m, err := tornadoModel(sc)
	if err != nil {
		return nil, err
	}
	cfg := m.Config()
	dx, dy, dz := m.Spacing()
	dom := flow.Domain{
		Origin:  flow.Vec3{X: m.CellX(0), Y: m.CellY(0), Z: m.CellZ(0)},
		Spacing: flow.Vec3{X: dx, Y: dy, Z: dz},
	}
	mkSeries := func(u, v, w *grid.Window) (*flow.VectorSeries, error) {
		var sl []flow.VectorSlice
		for i := range u.Slices {
			sl = append(sl, flow.VectorSlice{U: u.Slices[i], V: v.Slices[i], W: w.Slices[i], Time: u.Times[i]})
		}
		return flow.NewVectorSeries(dom, sl)
	}
	baseline, err := mkSeries(uSeq, vSeq, wSeq)
	if err != nil {
		return nil, err
	}

	// Seed plane: horizontal grid at low level crossing the vortex track.
	t0 := uSeq.Times[0]
	duration := uSeq.Times[len(uSeq.Times)-1] - t0
	steps := int(duration / (4 * sc.PathlineDt)) // coarser than Table II: many seeds
	if steps < 10 {
		steps = 10
	}
	opt := flow.FTLEOptions{
		T0:     t0,
		Advect: flow.AdvectOptions{Dt: duration / float64(steps), Steps: steps},
	}
	origin := flow.Vec3{X: cfg.Lx/3 - 2*cfg.CoreRadius, Y: cfg.Ly/3 - 2*cfg.CoreRadius, Z: 0.05 * cfg.Lz}
	du := flow.Vec3{X: 4 * cfg.CoreRadius / 12}
	dv := flow.Vec3{Y: 4 * cfg.CoreRadius / 12}
	const nu, nv = 13, 13

	fprintf(progress, "ftle: baseline plane %dx%d, %d advection steps\n", nu, nv, steps)
	basePlane, err := flow.ComputeFTLE(baseline, origin, du, dv, nu, nv, opt)
	if err != nil {
		return nil, err
	}
	res := &FTLEResult{BaselineMax: basePlane.Max()}

	compressSeq := func(seq *grid.Window, opts core.Options) (*grid.Window, error) {
		comp, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		ws := opts.WindowSize
		if opts.Mode == core.Spatial3D {
			ws = 1
		}
		chunks, err := seq.Partition(ws)
		if err != nil {
			return nil, err
		}
		out := grid.NewWindow(seq.Dims)
		for _, ch := range chunks {
			recon, _, err := comp.RoundTrip(ch)
			if err != nil {
				return nil, err
			}
			for i := range recon.Slices {
				if err := out.Append(recon.Slices[i], recon.Times[i]); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	for _, ratio := range []float64{32, 128} {
		for _, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
			var opts core.Options
			if mode == core.Spatial3D {
				opts = BaseOptions3D(ratio, sc.Workers)
			} else {
				opts = BaseOptions4D(ratio, 18, sc.Workers)
				opts.TemporalKernel = wavelet.CDF97
			}
			fprintf(progress, "ftle: %g:1 %v\n", ratio, mode)
			cu, err := compressSeq(uSeq, opts)
			if err != nil {
				return nil, err
			}
			cv, err := compressSeq(vSeq, opts)
			if err != nil {
				return nil, err
			}
			cw, err := compressSeq(wSeq, opts)
			if err != nil {
				return nil, err
			}
			series, err := mkSeries(cu, cv, cw)
			if err != nil {
				return nil, err
			}
			plane, err := flow.ComputeFTLE(series, origin, du, dv, nu, nv, opt)
			if err != nil {
				return nil, err
			}
			d, err := basePlane.MeanAbsDiff(plane)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, FTLERow{Ratio: ratio, Mode: mode, MeanAbsDiff: d})
		}
	}
	return res, nil
}

// Row returns the entry for (ratio, mode), or nil.
func (r *FTLEResult) Row(ratio float64, mode core.Mode) *FTLERow {
	for i := range r.Rows {
		if fbits.Eq(r.Rows[i].Ratio, ratio) && r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Write renders the FTLE study.
func (r *FTLEResult) Write(w io.Writer) {
	fmt.Fprintf(w, "FTLE study (extension) — Tornado winds; baseline max FTLE %.4g 1/s\n", r.BaselineMax)
	fmt.Fprintf(w, "%-12s %16s\n", "Data Set", "mean |ΔFTLE|")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %16.4e\n", fmt.Sprintf("%g:1, %v", row.Ratio, row.Mode), row.MeanAbsDiff)
	}
}

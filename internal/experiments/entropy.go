package experiments

import (
	"fmt"
	"io"

	"stwave/internal/codec"
	"stwave/internal/core"
	"stwave/internal/fbits"
	"stwave/internal/grid"
	"stwave/internal/metrics"
)

// EntropyRow is one compression-ratio point of the entropy-vs-sparse
// codec study: both backends run on the identical thresholded
// coefficient stream, so the size ratio isolates what entropy coding
// buys once the transform and threshold are fixed.
type EntropyRow struct {
	// Ratio is the threshold compression ratio (paper Section V-A4).
	Ratio float64
	// SparseBytes / EntropyBytes are the encoded stream sizes.
	SparseBytes, EntropyBytes int64
	// SparsePSNR / EntropyPSNR are reconstruction PSNRs in dB against
	// the original data.
	SparsePSNR, EntropyPSNR float64
	// SizeGain is SparseBytes / EntropyBytes (>1 means entropy wins).
	SizeGain float64
}

// EntropyResult holds the full ratio sweep on the Table-1 fixture.
type EntropyResult struct {
	Dims   grid.Dims
	Slices int
	Rows   []EntropyRow
}

// RunEntropyStudy sweeps the paper's compression ratios over the Table-1
// fixture (Ghost enstrophy, one 20-slice window) and compares the sparse
// and entropy coefficient backends at matched reconstruction quality:
// same transform, same threshold, only the coefficient coder differs.
// The entropy backend runs at its default 16-bit quantization, whose
// quantization noise sits far below the threshold error, so the two
// PSNR columns agree to within a fraction of a dB while the entropy
// stream is substantially smaller.
func RunEntropyStudy(sc Scale, progress io.Writer) (*EntropyResult, error) {
	seq, err := GhostSeries(sc, GhostEnstrophy)
	if err != nil {
		return nil, err
	}
	const slices = 20
	if seq.Len() < slices {
		return nil, fmt.Errorf("experiments: need %d slices, have %d", slices, seq.Len())
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < slices; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, err
		}
	}
	res := &EntropyResult{Dims: seq.Dims, Slices: slices}

	eval := func(ratio float64, cdc codec.Codec) (int64, float64, error) {
		opts := BaseOptions4D(ratio, slices, sc.Workers)
		opts.Codec = cdc
		comp, err := core.New(opts)
		if err != nil {
			return 0, 0, err
		}
		recon, cw, err := comp.RoundTrip(win)
		if err != nil {
			return 0, 0, err
		}
		ac := metrics.NewAccumulator()
		for i := range win.Slices {
			if err := ac.Add(win.Slices[i].Data, recon.Slices[i].Data); err != nil {
				return 0, 0, err
			}
		}
		return cw.EncodedSizeBytes(), ac.PSNR(), nil
	}

	for _, ratio := range Ratios {
		fprintf(progress, "entropy: ratio %g\n", ratio)
		sb, sp, err := eval(ratio, codec.Default())
		if err != nil {
			return nil, err
		}
		eb, ep, err := eval(ratio, codec.Entropy())
		if err != nil {
			return nil, err
		}
		row := EntropyRow{Ratio: ratio, SparseBytes: sb, EntropyBytes: eb,
			SparsePSNR: sp, EntropyPSNR: ep}
		if eb > 0 {
			row.SizeGain = float64(sb) / float64(eb)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the row at a threshold ratio, or nil.
func (r *EntropyResult) Row(ratio float64) *EntropyRow {
	for i := range r.Rows {
		if fbits.Eq(r.Rows[i].Ratio, ratio) {
			return &r.Rows[i]
		}
	}
	return nil
}

// Write renders the study as a ratio-vs-size/PSNR table.
func (r *EntropyResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Entropy vs sparse coefficient coding (%v x %d slices, Ghost enstrophy)\n", r.Dims, r.Slices)
	fmt.Fprintf(w, "%7s %12s %12s %8s %12s %12s\n",
		"Ratio", "Sparse", "Entropy", "Gain", "PSNR sparse", "PSNR entropy")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%7g %12s %12s %7.2fx %10.2fdB %10.2fdB\n",
			row.Ratio, fmtBytes(row.SparseBytes), fmtBytes(row.EntropyBytes),
			row.SizeGain, row.SparsePSNR, row.EntropyPSNR)
	}
}

package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"stwave/internal/core"
)

var (
	compareMemo  *CompareResult
	ablationMemo *AblationResult
)

func getCompare(t *testing.T) *CompareResult {
	t.Helper()
	if compareMemo == nil {
		r, err := RunComparison(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		compareMemo = r
	}
	return compareMemo
}

func getAblation(t *testing.T) *AblationResult {
	t.Helper()
	if ablationMemo == nil {
		r, err := RunAblation(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ablationMemo = r
	}
	return ablationMemo
}

func TestComparisonCoversAllTechniques(t *testing.T) {
	r := getCompare(t)
	for _, tech := range []string{"wavelet-3D", "wavelet-4D", "lorenzo-4D", "isabela", "mcp"} {
		rows := r.TechniqueRows(tech)
		if len(rows) == 0 {
			t.Errorf("no rows for technique %s", tech)
			continue
		}
		for _, row := range rows {
			if row.Bytes <= 0 || row.Bytes >= r.RawSize {
				t.Errorf("%s %s: bytes %d not a real compression of %d", tech, row.Setting, row.Bytes, r.RawSize)
			}
			if row.NRMSE < 0 {
				t.Errorf("%s %s: negative NRMSE", tech, row.Setting)
			}
		}
	}
}

// Rate-distortion sanity: within each technique, spending more bytes never
// hurts quality (the settings are ordered loose-to-tight).
func TestComparisonMonotoneWithinTechnique(t *testing.T) {
	r := getCompare(t)
	for _, tech := range []string{"lorenzo-4D", "mcp"} {
		rows := r.TechniqueRows(tech)
		for i := 1; i < len(rows); i++ {
			if rows[i].Bytes > rows[i-1].Bytes && rows[i].NRMSE > rows[i-1].NRMSE*1.001 {
				t.Errorf("%s: more bytes (%d > %d) but worse NRMSE (%.3e > %.3e)",
					tech, rows[i].Bytes, rows[i-1].Bytes, rows[i].NRMSE, rows[i-1].NRMSE)
			}
		}
	}
}

// The structural findings the comparison should exhibit: wavelet-4D beats
// wavelet-3D at matched ratios, and ISABELA's ratio saturates in the 2-4:1
// regime regardless of its error.
func TestComparisonStructure(t *testing.T) {
	r := getCompare(t)
	w3 := r.TechniqueRows("wavelet-3D")
	w4 := r.TechniqueRows("wavelet-4D")
	if len(w3) != len(w4) {
		t.Fatalf("wavelet rows mismatch: %d vs %d", len(w3), len(w4))
	}
	for i := range w3 {
		if w4[i].NRMSE >= w3[i].NRMSE {
			t.Errorf("at %s: 4D NRMSE %.3e not below 3D %.3e", w3[i].Setting, w4[i].NRMSE, w3[i].NRMSE)
		}
	}
	for _, row := range r.TechniqueRows("isabela") {
		if row.Ratio > 4.5 {
			t.Errorf("ISABELA ratio %.1f:1 exceeds its permutation-index ceiling", row.Ratio)
		}
	}
}

func TestAblationStudies(t *testing.T) {
	r := getAblation(t)
	// Joint budget beats per-slice budget (or at least does not lose).
	budget := r.StudyRows("budget")
	if len(budget) != 2 {
		t.Fatalf("budget study has %d rows", len(budget))
	}
	if budget[0].NRMSE > budget[1].NRMSE*1.05 {
		t.Errorf("joint budget NRMSE %.3e worse than per-slice %.3e", budget[0].NRMSE, budget[1].NRMSE)
	}
	// Temporal levels: each added level helps (monotone non-increasing).
	tl := r.StudyRows("temporal-levels")
	if len(tl) < 2 {
		t.Fatal("temporal-levels study too small")
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].NRMSE > tl[i-1].NRMSE*1.01 {
			t.Errorf("temporal level %s NRMSE %.3e worse than %s %.3e",
				tl[i].Variant, tl[i].NRMSE, tl[i-1].Variant, tl[i-1].NRMSE)
		}
	}
	// Level 0 must match the hierarchy: it is strictly the worst.
	if tl[len(tl)-1].NRMSE >= tl[0].NRMSE {
		t.Error("max temporal depth not better than zero depth")
	}
	// Spatial levels: depth helps dramatically (0 levels means thresholding
	// raw samples spatially).
	sl := r.StudyRows("spatial-levels")
	if sl[len(sl)-1].NRMSE >= sl[0].NRMSE {
		t.Error("max spatial depth not better than zero depth")
	}
	// Kernels: all three produce valid results; Haar is not catastrophically
	// worse (same order of magnitude).
	tk := r.StudyRows("temporal-kernel")
	if len(tk) != 3 {
		t.Fatalf("temporal-kernel study has %d rows", len(tk))
	}
	for _, row := range tk {
		if row.NRMSE <= 0 {
			t.Errorf("kernel %s produced zero error at 32:1 (implausible)", row.Variant)
		}
	}
}

func TestCompareAndAblationRendering(t *testing.T) {
	var buf bytes.Buffer
	getCompare(t).Write(&buf)
	out := buf.String()
	for _, want := range []string{"wavelet-4D", "isabela", "mcp", "lorenzo-4D", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare rendering missing %q", want)
		}
	}
	buf.Reset()
	getAblation(t).Write(&buf)
	out = buf.String()
	for _, want := range []string{"budget", "temporal-levels", "spatial-levels", "temporal-kernel"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation rendering missing %q", want)
		}
	}
}

func TestAblationUsesMode(t *testing.T) {
	// Guard: temporal level 0 in the ablation must equal a 3D-equivalent
	// spatial-only transform with joint budgeting — i.e., still 4D mode
	// plumbing but no temporal pass.
	r := getAblation(t)
	tl := r.StudyRows("temporal-levels")
	if tl[0].Variant != "0" {
		t.Fatalf("first temporal-level variant is %q", tl[0].Variant)
	}
	if tl[0].NRMSE == 0 {
		t.Error("level-0 run produced no error")
	}
	_ = core.Spatial3D // documented relationship; no further assertion
}

func TestFTLEExperiment(t *testing.T) {
	r, err := RunFTLE(TestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineMax <= 0 {
		t.Errorf("baseline max FTLE %g, want positive (vortex shear)", r.BaselineMax)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("have %d FTLE rows, want 4", len(r.Rows))
	}
	for _, ratio := range []float64{32, 128} {
		r3 := r.Row(ratio, core.Spatial3D)
		r4 := r.Row(ratio, core.Spatiotemporal4D)
		if r3 == nil || r4 == nil {
			t.Fatal("missing FTLE rows")
		}
		if r3.MeanAbsDiff < 0 || r4.MeanAbsDiff < 0 {
			t.Error("negative FTLE differences")
		}
		// 4D's cumulative-error advantage should carry to FTLE.
		if r4.MeanAbsDiff > r3.MeanAbsDiff*1.2 {
			t.Errorf("%g:1: 4D FTLE error %.4e well above 3D %.4e", ratio, r4.MeanAbsDiff, r3.MeanAbsDiff)
		}
	}
	// Error grows with ratio for 3D.
	if r.Row(128, core.Spatial3D).MeanAbsDiff < r.Row(32, core.Spatial3D).MeanAbsDiff*0.5 {
		t.Error("3D FTLE error shrank dramatically at higher compression")
	}
}

func TestFig4Artifact(t *testing.T) {
	dir := t.TempDir()
	path, g3, g4, err := RunFig4(TestScale(), dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 1000 {
		t.Errorf("fig4 image suspiciously small: %d bytes", st.Size())
	}
	if g3 < 0 || g4 < 0 {
		t.Error("negative final-position gaps")
	}
	// The paper's Figure 4 story: 4D pathlines end closer to the truth.
	if g4 > g3*1.5 {
		t.Errorf("4D final gap %.0f m well above 3D %.0f m", g4, g3)
	}
}

func TestFig5Artifact(t *testing.T) {
	dir := t.TempDir()
	paths, ao, a3, a4, err := RunFig5(TestScale(), dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("wrote %d images, want 3", len(paths))
	}
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	if ao <= 0 {
		t.Fatal("baseline isosurface area not positive")
	}
	// Table III shape at 64:1: |4D error| < |3D error|.
	e3 := abs(1 - a3/ao)
	e4 := abs(1 - a4/ao)
	if e4 >= e3 {
		t.Errorf("4D area error %.3f not below 3D %.3f", e4, e3)
	}
}

func TestSeamProfile(t *testing.T) {
	r, err := RunSeamProfile(TestScale(), 10, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerPosition) != 10 {
		t.Fatalf("profile has %d positions", len(r.PerPosition))
	}
	for i, e := range r.PerPosition {
		if e <= 0 {
			t.Errorf("position %d NRMSE %g", i, e)
		}
	}
	// The seam artifact: edges no better than the center (typically worse).
	if r.EdgeToCenterRatio() < 0.7 {
		t.Errorf("edge/center ratio %.2f — edges unexpectedly better than center", r.EdgeToCenterRatio())
	}
}

func TestP3EqualStorageStudy(t *testing.T) {
	r, err := RunP3(TestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("have %d P3 rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Equal-storage premise: the two variants store the same ideal
		// bytes (within one coefficient per window of rounding).
		diff := row.StoredBytes3D - row.StoredBytes4D
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.02*float64(row.StoredBytes3D) {
			t.Errorf("R=%g: storage mismatch %d vs %d", row.Ratio3D, row.StoredBytes3D, row.StoredBytes4D)
		}
		// P3's payoff: on the held-out intermediate slices, having real
		// (4D-compressed) data beats interpolating 3D reconstructions.
		if row.Odd4D >= row.Odd3D {
			t.Errorf("R=%g: held-out 4D NRMSE %.4e not below interpolated 3D %.4e",
				row.Ratio3D, row.Odd4D, row.Odd3D)
		}
	}
}

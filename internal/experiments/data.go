package experiments

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/sim/cloverleaf"
	"stwave/internal/sim/ghost"
	"stwave/internal/sim/tornado"
)

// GhostVariable selects a Ghost output field.
type GhostVariable int

const (
	// GhostVelocityX is the X component of velocity.
	GhostVelocityX GhostVariable = iota
	// GhostEnstrophy is the point-wise enstrophy density.
	GhostEnstrophy
)

func (v GhostVariable) String() string {
	if v == GhostEnstrophy {
		return "enstrophy"
	}
	return "velocity-x"
}

// GhostSeries runs (or reuses) the Ghost solver and returns `slices` time
// slices of the requested variable at base cadence. The solver is warmed up
// past the initial transient first, matching the paper's use of "the later
// portion of the simulation when interesting phenomena occur."
func GhostSeries(sc Scale, v GhostVariable) (*grid.Window, error) {
	key := fmt.Sprintf("ghost/%v/n%d/s%d/e%d", v, sc.GhostN, sc.GhostSlices, sc.GhostOutputEvery)
	return datasets.get(key, func() (*grid.Window, error) {
		cfg := ghost.DefaultConfig(sc.GhostN)
		cfg.Workers = sc.Workers
		s, err := ghost.NewSolver(cfg)
		if err != nil {
			return nil, err
		}
		s.Run(50) // let turbulence develop
		w := grid.NewWindow(grid.Dims{Nx: sc.GhostN, Ny: sc.GhostN, Nz: sc.GhostN})
		for i := 0; i < sc.GhostSlices; i++ {
			var f *grid.Field3D
			switch v {
			case GhostEnstrophy:
				f = s.Enstrophy()
			default:
				f = s.VelocityX()
			}
			if err := w.Append(f, s.Time()); err != nil {
				return nil, err
			}
			s.Run(sc.GhostOutputEvery)
		}
		return w, nil
	})
}

// CloverVariable selects a CloverLeaf output field.
type CloverVariable int

const (
	// CloverVelocityX is the node-centered X velocity ((N+1)³).
	CloverVelocityX CloverVariable = iota
	// CloverEnergy is the cell-centered specific internal energy (N³).
	CloverEnergy
)

func (v CloverVariable) String() string {
	if v == CloverEnergy {
		return "energy"
	}
	return "velocity-x"
}

// CloverSeries runs the CloverLeaf solver over its (interesting) life span
// and returns the requested variable series.
func CloverSeries(sc Scale, v CloverVariable) (*grid.Window, error) {
	key := fmt.Sprintf("clover/%v/n%d/s%d/e%d", v, sc.CloverN, sc.CloverSlices, sc.CloverOutputEvery)
	return datasets.get(key, func() (*grid.Window, error) {
		s, err := cloverleaf.NewSolver(cloverleaf.DefaultConfig(sc.CloverN))
		if err != nil {
			return nil, err
		}
		var dims grid.Dims
		if v == CloverEnergy {
			dims = grid.Dims{Nx: sc.CloverN, Ny: sc.CloverN, Nz: sc.CloverN}
		} else {
			dims = grid.Dims{Nx: sc.CloverN + 1, Ny: sc.CloverN + 1, Nz: sc.CloverN + 1}
		}
		w := grid.NewWindow(dims)
		for i := 0; i < sc.CloverSlices; i++ {
			var f *grid.Field3D
			if v == CloverEnergy {
				f = s.Energy()
			} else {
				f = s.VelocityX()
			}
			if err := w.Append(f, s.Time()); err != nil {
				return nil, err
			}
			s.Run(sc.CloverOutputEvery)
		}
		return w, nil
	})
}

// TornadoVariable selects a tornado output field.
type TornadoVariable int

const (
	// TornadoVelocityX is the X wind component.
	TornadoVelocityX TornadoVariable = iota
	// TornadoEnstrophy is |curl u|² from the gridded winds.
	TornadoEnstrophy
	// TornadoCloudRatio is the cloud water mixing ratio.
	TornadoCloudRatio
	// TornadoVelocityZ is the vertical wind (isosurface study).
	TornadoVelocityZ
	// TornadoPressurePert is the pressure perturbation (isosurface study).
	TornadoPressurePert
)

func (v TornadoVariable) String() string {
	switch v {
	case TornadoEnstrophy:
		return "enstrophy"
	case TornadoCloudRatio:
		return "cloud-ratio"
	case TornadoVelocityZ:
		return "velocity-z"
	case TornadoPressurePert:
		return "pressure-pert"
	default:
		return "velocity-x"
	}
}

// tornadoModel builds the shared model for a scale.
func tornadoModel(sc Scale) (*tornado.Model, error) {
	return tornado.NewModel(tornado.DefaultConfig(sc.TornadoNx, sc.TornadoNy, sc.TornadoNz))
}

// TornadoSeries samples the tornado model at 1-second base cadence
// starting at the paper's analysis epoch.
func TornadoSeries(sc Scale, v TornadoVariable) (*grid.Window, error) {
	key := fmt.Sprintf("tornado/%v/n%dx%dx%d/s%d", v, sc.TornadoNx, sc.TornadoNy, sc.TornadoNz, sc.TornadoSlices)
	return datasets.get(key, func() (*grid.Window, error) {
		m, err := tornadoModel(sc)
		if err != nil {
			return nil, err
		}
		w := grid.NewWindow(grid.Dims{Nx: sc.TornadoNx, Ny: sc.TornadoNy, Nz: sc.TornadoNz})
		const epoch = 8502 // seconds; the paper's t0
		for i := 0; i < sc.TornadoSlices; i++ {
			t := float64(epoch + i)
			var f *grid.Field3D
			switch v {
			case TornadoEnstrophy:
				f = m.Enstrophy(t)
			case TornadoCloudRatio:
				f = m.CloudMixingRatio(t)
			case TornadoVelocityZ:
				f = m.VelocityZ(t)
			case TornadoPressurePert:
				f = m.PressurePerturbation(t)
			default:
				f = m.VelocityX(t)
			}
			if err := w.Append(f, t); err != nil {
				return nil, err
			}
		}
		return w, nil
	})
}

// TornadoVelocitySeries samples all three wind components at the paper's
// analysis cadence of 2 s (res=1/2, "what our domain scientist collaborator
// uses") for the pathline study.
func TornadoVelocitySeries(sc Scale, slices int) (u, v, w *grid.Window, err error) {
	var out [3]*grid.Window
	for c := 0; c < 3; c++ {
		k := fmt.Sprintf("tornado/vel%d/n%dx%dx%d/s%d", c, sc.TornadoNx, sc.TornadoNy, sc.TornadoNz, slices)
		cc := c
		out[c], err = datasets.get(k, func() (*grid.Window, error) {
			// Generate all three components in one pass and cache peers.
			m, err := tornadoModel(sc)
			if err != nil {
				return nil, err
			}
			d := grid.Dims{Nx: sc.TornadoNx, Ny: sc.TornadoNy, Nz: sc.TornadoNz}
			wins := [3]*grid.Window{grid.NewWindow(d), grid.NewWindow(d), grid.NewWindow(d)}
			const epoch = 8502
			for i := 0; i < slices; i++ {
				t := float64(epoch + 2*i)
				uf, vf, wf := m.Velocity(t)
				if err := wins[0].Append(uf, t); err != nil {
					return nil, err
				}
				if err := wins[1].Append(vf, t); err != nil {
					return nil, err
				}
				if err := wins[2].Append(wf, t); err != nil {
					return nil, err
				}
			}
			// Seed the cache for the other two components.
			datasets.mu.Lock()
			for j := 0; j < 3; j++ {
				kj := fmt.Sprintf("tornado/vel%d/n%dx%dx%d/s%d", j, sc.TornadoNx, sc.TornadoNy, sc.TornadoNz, slices)
				if _, ok := datasets.m[kj]; !ok {
					datasets.m[kj] = wins[j]
				}
			}
			datasets.mu.Unlock()
			return wins[cc], nil
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return out[0], out[1], out[2], nil
}

package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/storage"
)

// Table1Row is one technique row of Table I.
type Table1Row struct {
	Tech string // "4D", "3D", "Raw"
	// Simulated I/O costs from the tiered-storage model.
	BufferWrite, BufferRead, PermWrite, TotalIO time.Duration
	// FileSize is the bytes landed on permanent storage.
	FileSize int64
	// CompTime is the measured wall-clock compression + decompression-free
	// computational cost.
	CompTime time.Duration
	// Error is the NRMSE of the reconstruction (0 for Raw).
	Error float64
}

// Table1Result holds the three rows plus a projection of the same pipeline
// at the paper's full data size.
type Table1Result struct {
	// Dims and Slices describe the measured workload.
	Dims   grid.Dims
	Slices int
	// Measured rows at this scale.
	Rows []Table1Row
	// Projected rows scale the measured compute throughput and the modeled
	// I/O to the paper's workload (20 slices of 512³ float32 = 10 GB).
	Projected []Table1Row
}

// RunTable1 reproduces Table I: a 20-slice window of Ghost enstrophy at
// 16:1, processed with 4D, 3D, and no compression through the tiered
// storage stack (real buffer files for staging, modeled I/O costs, real
// compute timing).
func RunTable1(sc Scale, progress io.Writer) (*Table1Result, error) {
	seq, err := GhostSeries(sc, GhostEnstrophy)
	if err != nil {
		return nil, err
	}
	const slices = 20
	if seq.Len() < slices {
		return nil, fmt.Errorf("experiments: need %d slices, have %d", slices, seq.Len())
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < slices; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, err
		}
	}
	rawBytes := int64(win.TotalSamples()) * 4
	res := &Table1Result{Dims: seq.Dims, Slices: slices}

	scratch, err := os.MkdirTemp("", "stwave-table1-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	nrmse := func(recon *grid.Window) (float64, error) {
		ac := metrics.NewAccumulator()
		for i := range win.Slices {
			if err := ac.Add(win.Slices[i].Data, recon.Slices[i].Data); err != nil {
				return 0, err
			}
		}
		return ac.NRMSE(), nil
	}

	// --- 4D: stage slices on the buffer, read back, compress, write. ---
	fprintf(progress, "table1: 4D pipeline\n")
	{
		model := storage.DefaultModel()
		buf, err := storage.NewBurstBuffer(scratch, model, win.Dims)
		if err != nil {
			return nil, err
		}
		ids := make([]int, win.Len())
		for i, s := range win.Slices {
			if ids[i], err = buf.PutSlice(s); err != nil {
				return nil, err
			}
		}
		staged := grid.NewWindow(win.Dims)
		for i, id := range ids {
			f, err := buf.GetSlice(id)
			if err != nil {
				return nil, err
			}
			if err := staged.Append(f, win.Times[i]); err != nil {
				return nil, err
			}
		}
		opts := BaseOptions4D(16, slices, sc.Workers)
		comp, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		cw, err := comp.CompressWindow(staged)
		if err != nil {
			return nil, err
		}
		compTime := time.Since(start)
		size := cw.IdealSizeBytes()
		if _, err := model.RecordWrite(storage.Permanent, size); err != nil {
			return nil, err
		}
		recon, err := core.Decompress(cw)
		if err != nil {
			return nil, err
		}
		e, err := nrmse(recon)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Tech:        "4D",
			BufferWrite: model.WriteTime(storage.Buffer),
			BufferRead:  model.ReadTime(storage.Buffer),
			PermWrite:   model.WriteTime(storage.Permanent),
			TotalIO:     model.TotalIO(),
			FileSize:    size,
			CompTime:    compTime,
			Error:       e,
		})
	}

	// --- 3D: compress slices in memory, no buffer traffic. ---
	fprintf(progress, "table1: 3D pipeline\n")
	{
		model := storage.DefaultModel()
		comp, err := core.New(BaseOptions3D(16, sc.Workers))
		if err != nil {
			return nil, err
		}
		recon := grid.NewWindow(win.Dims)
		var size int64
		var compTime time.Duration
		for i, s := range win.Slices {
			single := grid.NewWindow(win.Dims)
			if err := single.Append(s, win.Times[i]); err != nil {
				return nil, err
			}
			start := time.Now()
			cw, err := comp.CompressWindow(single)
			if err != nil {
				return nil, err
			}
			compTime += time.Since(start)
			size += cw.IdealSizeBytes()
			if _, err := model.RecordWrite(storage.Permanent, cw.IdealSizeBytes()); err != nil {
				return nil, err
			}
			rw, err := core.Decompress(cw)
			if err != nil {
				return nil, err
			}
			if err := recon.Append(rw.Slices[0], win.Times[i]); err != nil {
				return nil, err
			}
		}
		e, err := nrmse(recon)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Tech:      "3D",
			PermWrite: model.WriteTime(storage.Permanent),
			TotalIO:   model.TotalIO(),
			FileSize:  size,
			CompTime:  compTime,
			Error:     e,
		})
	}

	// --- Raw: write everything to permanent storage. ---
	{
		model := storage.DefaultModel()
		if _, err := model.RecordWrite(storage.Permanent, rawBytes); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Tech:      "Raw",
			PermWrite: model.WriteTime(storage.Permanent),
			TotalIO:   model.TotalIO(),
			FileSize:  rawBytes,
		})
	}

	if err := res.project(); err != nil {
		return nil, err
	}
	return res, nil
}

// project scales the measured rows to the paper's 10 GB workload: I/O from
// the bandwidth model (exact), compute from measured per-sample throughput.
func (r *Table1Result) project() error {
	paperSamples := int64(20) * 512 * 512 * 512
	paperBytes := paperSamples * 4
	ourSamples := int64(r.Slices) * int64(r.Dims.Len())
	scale := float64(paperSamples) / float64(ourSamples)
	model := storage.DefaultModel()
	for _, row := range r.Rows {
		p := Table1Row{Tech: row.Tech, Error: row.Error}
		p.CompTime = time.Duration(float64(row.CompTime) * scale)
		p.FileSize = int64(float64(row.FileSize) * scale)
		switch row.Tech {
		case "4D":
			bw, err := model.WriteCost(storage.Buffer, paperBytes)
			if err != nil {
				return err
			}
			br, err := model.ReadCost(storage.Buffer, paperBytes)
			if err != nil {
				return err
			}
			pw, err := model.WriteCost(storage.Permanent, p.FileSize)
			if err != nil {
				return err
			}
			p.BufferWrite, p.BufferRead, p.PermWrite = bw, br, pw
			p.TotalIO = bw + br + pw
		case "3D":
			pw, err := model.WriteCost(storage.Permanent, p.FileSize)
			if err != nil {
				return err
			}
			p.PermWrite, p.TotalIO = pw, pw
		case "Raw":
			pw, err := model.WriteCost(storage.Permanent, paperBytes)
			if err != nil {
				return err
			}
			p.FileSize = paperBytes
			p.PermWrite, p.TotalIO = pw, pw
		}
		r.Projected = append(r.Projected, p)
	}
	return nil
}

// Row returns the measured row for a technique, or nil.
func (r *Table1Result) Row(tech string) *Table1Row {
	for i := range r.Rows {
		if r.Rows[i].Tech == tech {
			return &r.Rows[i]
		}
	}
	return nil
}

// ProjectedRow returns the projected row for a technique, or nil.
func (r *Table1Result) ProjectedRow(tech string) *Table1Row {
	for i := range r.Projected {
		if r.Projected[i].Tech == tech {
			return &r.Projected[i]
		}
	}
	return nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.0fMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.0fKB", float64(n)/1e3)
	}
	return fmt.Sprintf("%dB", n)
}

// Write renders both the measured and projected tables.
func (r *Table1Result) Write(w io.Writer) {
	hdr := func(title string) {
		fmt.Fprintf(w, "%s\n%-5s %12s %12s %12s %10s %12s %10s\n",
			title, "Tech.", "Buffer W+R", "Perm. Write", "Total I/O", "File Size", "Comp. Time", "Error")
	}
	rows := func(rows []Table1Row) {
		for _, row := range rows {
			fmt.Fprintf(w, "%-5s %5.2f+%5.2fs %11.2fs %11.2fs %10s %11.2fs %10.2e\n",
				row.Tech,
				row.BufferWrite.Seconds(), row.BufferRead.Seconds(),
				row.PermWrite.Seconds(), row.TotalIO.Seconds(),
				fmtBytes(row.FileSize), row.CompTime.Seconds(), row.Error)
		}
	}
	hdr(fmt.Sprintf("Table I (measured at %v x %d slices, 16:1, Ghost enstrophy)", r.Dims, r.Slices))
	rows(r.Rows)
	hdr("Table I (projected to the paper's 20 x 512^3 = 10 GB workload)")
	rows(r.Projected)
}

package experiments

import (
	"fmt"
	"io"

	"stwave/internal/baseline"
	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
)

// CompareRow is one technique/setting point on the rate-distortion plane.
type CompareRow struct {
	Technique string
	Setting   string
	// Bytes is the honest compressed size; Ratio is raw float32 bytes over
	// Bytes.
	Bytes int64
	Ratio float64
	NRMSE float64
	NLInf float64
}

// CompareResult is the rate-distortion study across compressor families.
type CompareResult struct {
	Dataset string
	RawSize int64
	Rows    []CompareRow
}

// RunComparison sweeps the wavelet codec (3D and 4D), the Lorenzo
// predictor, ISABELA, and motion-compensated prediction over the same Ghost
// velocity data, reporting honest rate-distortion points for each. This
// extends the paper's evaluation with the Section III related-work
// techniques it discusses but does not measure.
func RunComparison(sc Scale, progress io.Writer) (*CompareResult, error) {
	seq, err := GhostSeries(sc, GhostVelocityX)
	if err != nil {
		return nil, err
	}
	// Work on one window worth of slices to keep the baselines' costs flat.
	n := 20
	if seq.Len() < n {
		n = seq.Len()
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < n; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, err
		}
	}
	res := &CompareResult{
		Dataset: fmt.Sprintf("Ghost velocity-x, %d slices of %v", n, win.Dims),
		RawSize: int64(win.TotalSamples()) * 4,
	}
	rng := win.Range()

	measure := func(recon *grid.Window) (nrmse, nlinf float64, err error) {
		ac := metrics.NewAccumulator()
		for i := range win.Slices {
			if err := ac.Add(win.Slices[i].Data, recon.Slices[i].Data); err != nil {
				return 0, 0, err
			}
		}
		return ac.NRMSE(), ac.NLInf(), nil
	}
	add := func(tech, setting string, bytes int64, recon *grid.Window) error {
		nr, nl, err := measure(recon)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, CompareRow{
			Technique: tech, Setting: setting, Bytes: bytes,
			Ratio: float64(res.RawSize) / float64(bytes),
			NRMSE: nr, NLInf: nl,
		})
		return nil
	}

	// Wavelet 3D and 4D across the paper's ratios.
	for _, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
		for _, ratio := range Ratios {
			var opts core.Options
			if mode == core.Spatial3D {
				opts = BaseOptions3D(ratio, sc.Workers)
			} else {
				opts = BaseOptions4D(ratio, n, sc.Workers)
			}
			comp, err := core.New(opts)
			if err != nil {
				return nil, err
			}
			recon, cw, err := comp.RoundTrip(win)
			if err != nil {
				return nil, err
			}
			fprintf(progress, "compare: wavelet %v %g:1\n", mode, ratio)
			if err := add("wavelet-"+mode.String(), fmt.Sprintf("%g:1", ratio), cw.EncodedSizeBytes(), recon); err != nil {
				return nil, err
			}
			if mode == core.Spatiotemporal4D {
				defl, err := cw.DeflatedSizeBytes()
				if err != nil {
					return nil, err
				}
				if err := add("wavelet-4D+fl", fmt.Sprintf("%g:1", ratio), defl, recon); err != nil {
					return nil, err
				}
			}
		}
	}

	// Lorenzo predictor (4D) across error bounds.
	for _, frac := range []float64{1e-2, 1e-3, 1e-4, 1e-5} {
		c, err := baseline.Compress(win, frac*rng, true)
		if err != nil {
			return nil, err
		}
		recon, err := baseline.Decompress(c)
		if err != nil {
			return nil, err
		}
		fprintf(progress, "compare: lorenzo eps=%g*range\n", frac)
		if err := add("lorenzo-4D", fmt.Sprintf("eps=%g*range", frac), c.SizeBytes(), recon); err != nil {
			return nil, err
		}
	}

	// ISABELA at its canonical settings and a high-knot variant.
	for _, knots := range []int{30, 60} {
		c, err := baseline.CompressIsabela(win, 1024, knots)
		if err != nil {
			return nil, err
		}
		recon, err := baseline.DecompressIsabela(c)
		if err != nil {
			return nil, err
		}
		fprintf(progress, "compare: isabela knots=%d\n", knots)
		if err := add("isabela", fmt.Sprintf("w=1024,k=%d", knots), c.SizeBytes(), recon); err != nil {
			return nil, err
		}
	}

	// MCP across error bounds.
	for _, frac := range []float64{1e-2, 1e-3, 1e-4} {
		c, err := baseline.CompressMCP(win, baseline.DefaultMCPOptions(frac*rng))
		if err != nil {
			return nil, err
		}
		recon, err := baseline.DecompressMCP(c)
		if err != nil {
			return nil, err
		}
		fprintf(progress, "compare: mcp eps=%g*range\n", frac)
		if err := add("mcp", fmt.Sprintf("eps=%g*range", frac), c.SizeBytes(), recon); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Rows returns all rows for one technique.
func (r *CompareResult) TechniqueRows(tech string) []CompareRow {
	var out []CompareRow
	for _, row := range r.Rows {
		if row.Technique == tech {
			out = append(out, row)
		}
	}
	return out
}

// Write renders the rate-distortion table.
func (r *CompareResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Compressor comparison — %s (%d raw bytes)\n", r.Dataset, r.RawSize)
	fmt.Fprintf(w, "%-14s %-16s %10s %8s %12s %12s\n", "technique", "setting", "bytes", "ratio", "NRMSE", "L-inf")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-16s %10d %7.1f:1 %12.4e %12.4e\n",
			row.Technique, row.Setting, row.Bytes, row.Ratio, row.NRMSE, row.NLInf)
	}
}

package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

// AblationRow is one design-choice variant with its quality impact.
type AblationRow struct {
	Study   string
	Variant string
	NRMSE   float64
	NLInf   float64
}

// AblationResult aggregates the DESIGN.md-called-out ablations.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation measures the design choices DESIGN.md calls out, all on the
// same Ghost velocity window at 32:1:
//
//   - joint whole-window vs per-slice coefficient budgeting in 4D mode,
//   - temporal transform depth from 0 (3D-with-buffering) to the Eq. 2 max,
//   - temporal kernel choice at the sweet-spot window,
//   - spatial level depth from 0 to max (is the spatial pyramid pulling its
//     weight once the temporal transform exists?).
func RunAblation(sc Scale, progress io.Writer) (*AblationResult, error) {
	seq, err := GhostSeries(sc, GhostVelocityX)
	if err != nil {
		return nil, err
	}
	n := 20
	if seq.Len() < n {
		n = seq.Len()
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < n; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, err
		}
	}
	res := &AblationResult{}
	eval := func(study, variant string, opts core.Options) error {
		fprintf(progress, "ablation: %s / %s\n", study, variant)
		comp, err := core.New(opts)
		if err != nil {
			return err
		}
		recon, _, err := comp.RoundTrip(win)
		if err != nil {
			return err
		}
		ac := metrics.NewAccumulator()
		for i := range win.Slices {
			if err := ac.Add(win.Slices[i].Data, recon.Slices[i].Data); err != nil {
				return err
			}
		}
		res.Rows = append(res.Rows, AblationRow{
			Study: study, Variant: variant, NRMSE: ac.NRMSE(), NLInf: ac.NLInf(),
		})
		return nil
	}

	base := BaseOptions4D(32, n, sc.Workers)

	// Budget study.
	if err := eval("budget", "joint (paper)", base); err != nil {
		return nil, err
	}
	perSlice := base
	perSlice.PerSliceBudget = true
	if err := eval("budget", "per-slice", perSlice); err != nil {
		return nil, err
	}

	// Temporal depth study.
	maxT := transform.LevelsTemporal(wavelet.CDF97, n)
	for lvl := 0; lvl <= maxT; lvl++ {
		o := base
		o.TemporalLevels = lvl
		if err := eval("temporal-levels", fmt.Sprintf("%d", lvl), o); err != nil {
			return nil, err
		}
	}

	// Temporal kernel study.
	for _, k := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53, wavelet.Haar} {
		o := base
		o.TemporalKernel = k
		o.TemporalLevels = -1
		if err := eval("temporal-kernel", k.String(), o); err != nil {
			return nil, err
		}
	}

	// Spatial depth study.
	maxS := transform.Levels3D(wavelet.CDF97, win.Dims)
	for lvl := 0; lvl <= maxS; lvl++ {
		o := base
		o.SpatialLevels = lvl
		if err := eval("spatial-levels", fmt.Sprintf("%d", lvl), o); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// StudyRows returns all rows of one study, in insertion order.
func (r *AblationResult) StudyRows(study string) []AblationRow {
	var out []AblationRow
	for _, row := range r.Rows {
		if row.Study == study {
			out = append(out, row)
		}
	}
	return out
}

// Write renders the ablation table grouped by study.
func (r *AblationResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Ablations — Ghost velocity-x, 20 slices, 32:1, 4D sweet spot\n")
	var last string
	for _, row := range r.Rows {
		if row.Study != last {
			fmt.Fprintf(w, "== %s ==\n", row.Study)
			last = row.Study
		}
		fmt.Fprintf(w, "  %-16s %12.4e %12.4e\n", row.Variant, row.NRMSE, row.NLInf)
	}
}

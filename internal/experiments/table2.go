package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/fbits"
	"stwave/internal/flow"
	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// Table2Thresholds are the paper's deviation distances D in meters.
var Table2Thresholds = []float64{10, 50, 150, 300, 500}

// Table2Ratios are the compression ratios of the pathline study.
var Table2Ratios = []float64{8, 32, 64, 128}

// Table2Row is one row of Table II: (ratio, mode) with the mean deviation
// error at every threshold.
type Table2Row struct {
	Ratio float64
	Mode  core.Mode
	// Errors[i] is the mean deviation percentage at Table2Thresholds[i].
	Errors []float64
}

// Table2Result holds all rows.
type Table2Result struct {
	Rows  []Table2Row
	Seeds int
}

// RunTable2 reproduces Table II: pathlines through the Tornado wind field
// advected with RK4, comparing each compressed version against the
// uncompressed baseline via the first-deviation metric. The three velocity
// components are compressed individually (Section VI-A), 4D with CDF 9/7
// and window size 18.
func RunTable2(sc Scale, progress io.Writer) (*Table2Result, error) {
	slices := sc.TornadoSlices / 2
	if slices < 20 {
		slices = 20
	}
	uSeq, vSeq, wSeq, err := TornadoVelocitySeries(sc, slices)
	if err != nil {
		return nil, err
	}
	m, err := tornadoModel(sc)
	if err != nil {
		return nil, err
	}
	cfg := m.Config()
	dx, dy, dz := m.Spacing()
	dom := flow.Domain{
		Origin:  flow.Vec3{X: m.CellX(0), Y: m.CellY(0), Z: m.CellZ(0)},
		Spacing: flow.Vec3{X: dx, Y: dy, Z: dz},
	}

	mkSeries := func(u, v, w *grid.Window) (*flow.VectorSeries, error) {
		var sl []flow.VectorSlice
		for i := range u.Slices {
			sl = append(sl, flow.VectorSlice{
				U: u.Slices[i], V: v.Slices[i], W: w.Slices[i], Time: u.Times[i],
			})
		}
		return flow.NewVectorSeries(dom, sl)
	}

	baseline, err := mkSeries(uSeq, vSeq, wSeq)
	if err != nil {
		return nil, err
	}

	// Three rakes of seeds at the base of the tornado (Section VI-A).
	t0 := uSeq.Times[0]
	cx := cfg.Lx / 3 // vortex start region
	cy := cfg.Ly / 3
	zLow := 0.03 * cfg.Lz
	rakeLen := 4 * cfg.CoreRadius
	var seeds []flow.Vec3
	for r := 0; r < 3; r++ {
		off := float64(r-1) * 1.5 * cfg.CoreRadius
		a := flow.Vec3{X: cx - rakeLen/2, Y: cy + off, Z: zLow}
		b := flow.Vec3{X: cx + rakeLen/2, Y: cy + off, Z: zLow}
		seeds = append(seeds, flow.Rake(a, b, sc.PathlineSeedsPerRake)...)
	}

	duration := uSeq.Times[len(uSeq.Times)-1] - t0
	steps := int(duration / sc.PathlineDt)
	opt := flow.AdvectOptions{Dt: sc.PathlineDt, Steps: steps}
	fprintf(progress, "table2: advecting %d seeds x %d steps (baseline)\n", len(seeds), steps)
	basePaths, err := flow.AdvectAll(baseline, seeds, t0, opt)
	if err != nil {
		return nil, err
	}

	compressSeq := func(seq *grid.Window, opts core.Options) (*grid.Window, error) {
		comp, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		windowSize := opts.WindowSize
		if opts.Mode == core.Spatial3D {
			windowSize = 1
		}
		chunks, err := seq.Partition(windowSize)
		if err != nil {
			return nil, err
		}
		out := grid.NewWindow(seq.Dims)
		for _, ch := range chunks {
			recon, _, err := comp.RoundTrip(ch)
			if err != nil {
				return nil, err
			}
			for i := range recon.Slices {
				if err := out.Append(recon.Slices[i], recon.Times[i]); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	res := &Table2Result{Seeds: len(seeds)}
	for _, ratio := range Table2Ratios {
		for _, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
			var opts core.Options
			if mode == core.Spatial3D {
				opts = BaseOptions3D(ratio, sc.Workers)
			} else {
				// Section VI: CDF 9/7, window size 18.
				opts = BaseOptions4D(ratio, 18, sc.Workers)
				opts.TemporalKernel = wavelet.CDF97
			}
			fprintf(progress, "table2: %g:1 %v\n", ratio, mode)
			cu, err := compressSeq(uSeq, opts)
			if err != nil {
				return nil, err
			}
			cv, err := compressSeq(vSeq, opts)
			if err != nil {
				return nil, err
			}
			cw, err := compressSeq(wSeq, opts)
			if err != nil {
				return nil, err
			}
			series, err := mkSeries(cu, cv, cw)
			if err != nil {
				return nil, err
			}
			paths, err := flow.AdvectAll(series, seeds, t0, opt)
			if err != nil {
				return nil, err
			}
			row := Table2Row{Ratio: ratio, Mode: mode}
			for _, d := range Table2Thresholds {
				e, err := flow.MeanDeviationError(basePaths, paths, d)
				if err != nil {
					return nil, err
				}
				row.Errors = append(row.Errors, e)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Row returns the entry for (ratio, mode), or nil.
func (r *Table2Result) Row(ratio float64, mode core.Mode) *Table2Row {
	for i := range r.Rows {
		if fbits.Eq(r.Rows[i].Ratio, ratio) && r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Write renders Table II.
func (r *Table2Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Table II — pathline deviation error (%d seeds, mean %%)\n", r.Seeds)
	fmt.Fprintf(w, "%-12s", "Data Set")
	for _, d := range Table2Thresholds {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("D=%g", d))
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s", fmt.Sprintf("%g:1, %v", row.Ratio, row.Mode))
		for _, e := range row.Errors {
			fmt.Fprintf(w, " %7.1f%%", e)
		}
		fmt.Fprintln(w)
	}
}

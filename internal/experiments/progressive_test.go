package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var progressiveMemo *ProgressiveResult

func getProgressive(t *testing.T) *ProgressiveResult {
	t.Helper()
	if progressiveMemo == nil {
		r, err := RunProgressiveStudy(TestScale(), nil)
		if err != nil {
			t.Fatal(err)
		}
		progressiveMemo = r
	}
	return progressiveMemo
}

// TestProgressiveStudyAcceptance is the PR acceptance bar: a first usable
// preview must cost at least 10x fewer bytes than the full-window fetch,
// at a final PSNR identical to the legacy layout (the level-major layout
// only reorders the stream), with the refinement ladder monotone in both
// bytes and resolution.
func TestProgressiveStudyAcceptance(t *testing.T) {
	r := getProgressive(t)
	if r.PreviewGain < 10 {
		t.Errorf("preview gain %.1fx, want >= 10x (level-0 prefix %d B, full %d B)",
			r.PreviewGain, r.Levels[0].Bytes, r.FullBytes)
	}
	if d := math.Abs(r.FinalPSNR - r.LegacyPSNR); d > 1e-9 {
		t.Errorf("final PSNR %.6f dB differs from legacy %.6f dB; the layout must not change the reconstruction",
			r.FinalPSNR, r.LegacyPSNR)
	}
	if len(r.Levels) < 2 {
		t.Fatalf("only %d refinement levels; the study needs a ladder", len(r.Levels))
	}
	for i := 1; i < len(r.Levels); i++ {
		prev, cur := r.Levels[i-1], r.Levels[i]
		if cur.Bytes <= prev.Bytes {
			t.Errorf("level %d prefix %d B not larger than level %d prefix %d B",
				cur.Level, cur.Bytes, prev.Level, prev.Bytes)
		}
		if cur.Dims.Len() <= prev.Dims.Len() {
			t.Errorf("level %d dims %v not finer than level %d dims %v",
				cur.Level, cur.Dims, prev.Level, prev.Dims)
		}
	}
	last := r.Levels[len(r.Levels)-1]
	if last.Bytes != r.FullBytes {
		t.Errorf("deepest level prefix %d B != full window %d B; the extents must tile the payload",
			last.Bytes, r.FullBytes)
	}
	// The layout's price: the level table and per-group block headers
	// must stay a small fraction of the stream.
	if overhead := float64(r.FullBytes)/float64(r.LegacyBytes) - 1; overhead > 0.10 {
		t.Errorf("progressive layout overhead %.1f%%, want <= 10%%", 100*overhead)
	}
}

// TestProgressiveStudyROISplit checks the error-bounded run: both regions
// hold their bounds, and the ROI is actually held to the tighter one.
func TestProgressiveStudyROISplit(t *testing.T) {
	r := getProgressive(t)
	if len(r.ROI) != 2 {
		t.Fatalf("ROI split has %d rows, want 2", len(r.ROI))
	}
	for _, row := range r.ROI {
		if row.MaxErr > row.Bound {
			t.Errorf("%s max error %.3e exceeds its bound %.3e", row.Region, row.MaxErr, row.Bound)
		}
		if row.Samples == 0 {
			t.Errorf("%s region is empty", row.Region)
		}
	}
	if r.ROI[0].Bound >= r.ROI[1].Bound {
		t.Errorf("ROI bound %.3e not tighter than background bound %.3e", r.ROI[0].Bound, r.ROI[1].Bound)
	}
}

func TestProgressiveStudyWrite(t *testing.T) {
	var buf bytes.Buffer
	getProgressive(t).Write(&buf)
	out := buf.String()
	for _, want := range []string{"Progressive coarse-first delivery", "first usable preview", "vs original", "background"} {
		if !strings.Contains(out, want) {
			t.Errorf("study output missing %q:\n%s", want, out)
		}
	}
}

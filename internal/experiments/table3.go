package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/fbits"
	"stwave/internal/grid"
	"stwave/internal/isosurface"
	"stwave/internal/wavelet"
)

// Table3Variable describes one isosurface study variable with its isovalue.
type Table3Variable struct {
	Variable TornadoVariable
	Label    string
	Isovalue float64
}

// Table3Variables lists the paper's three variables. Isovalues are chosen
// the way the paper's collaborator chose his: at physically meaningful
// levels (cloud edge, strong updraft, significant pressure deficit).
var Table3Variables = []Table3Variable{
	{TornadoCloudRatio, "Cloud Mixing Ratio", 1.0},
	{TornadoVelocityZ, "Z-Velocity", 15.0},
	{TornadoPressurePert, "Pressure Perturbation", -2000.0},
}

// Table3Ratios are the compression ratios of the isosurface study.
var Table3Ratios = []float64{8, 16, 32, 64, 128}

// Table3Row is one (variable, ratio) row with both modes' area errors.
type Table3Row struct {
	Variable string
	Ratio    float64
	// Error3D and Error4D are the paper's (1 - SA/SA_B)*100 metric.
	Error3D, Error4D float64
}

// Table3Result holds all rows.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 reproduces Table III: isosurfaces of three Tornado scalar
// fields from 3D- and 4D-compressed data (CDF 9/7, window 18), compared to
// the baseline by total surface area. The evaluated slice sits mid-window,
// where temporal boundary effects are smallest; the entire window is
// compressed jointly as the paper does.
func RunTable3(sc Scale, progress io.Writer) (*Table3Result, error) {
	const windowSize = 18
	m, err := tornadoModel(sc)
	if err != nil {
		return nil, err
	}
	dx, dy, dz := m.Spacing()
	opt := isosurface.Options{SpacingX: dx, SpacingY: dy, SpacingZ: dz}

	res := &Table3Result{}
	for _, v := range Table3Variables {
		seq, err := TornadoSeries(sc, v.Variable)
		if err != nil {
			return nil, err
		}
		if seq.Len() < windowSize {
			return nil, fmt.Errorf("experiments: need %d slices for table3, have %d", windowSize, seq.Len())
		}
		win := grid.NewWindow(seq.Dims)
		for i := 0; i < windowSize; i++ {
			if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
				return nil, err
			}
		}
		evalIdx := windowSize / 2
		baseMesh, err := isosurface.Extract(win.Slices[evalIdx], v.Isovalue, opt)
		if err != nil {
			return nil, err
		}
		baseArea := baseMesh.SurfaceArea()
		fprintf(progress, "table3: %s baseline area %.4g (%d triangles)\n", v.Label, baseArea, len(baseMesh.Triangles))

		for _, ratio := range Table3Ratios {
			row := Table3Row{Variable: v.Label, Ratio: ratio}
			for _, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
				var opts core.Options
				if mode == core.Spatial3D {
					opts = BaseOptions3D(ratio, sc.Workers)
				} else {
					opts = BaseOptions4D(ratio, windowSize, sc.Workers)
					opts.TemporalKernel = wavelet.CDF97
				}
				comp, err := core.New(opts)
				if err != nil {
					return nil, err
				}
				recon, _, err := comp.RoundTrip(win)
				if err != nil {
					return nil, err
				}
				mesh, err := isosurface.Extract(recon.Slices[evalIdx], v.Isovalue, opt)
				if err != nil {
					return nil, err
				}
				e := isosurface.AreaError(baseArea, mesh.SurfaceArea())
				if mode == core.Spatial3D {
					row.Error3D = e
				} else {
					row.Error4D = e
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Row returns the entry for (variable label, ratio), or nil.
func (r *Table3Result) Row(variable string, ratio float64) *Table3Row {
	for i := range r.Rows {
		if r.Rows[i].Variable == variable && fbits.Eq(r.Rows[i].Ratio, ratio) {
			return &r.Rows[i]
		}
	}
	return nil
}

// Write renders Table III.
func (r *Table3Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Table III — isosurface area error (1 - SA/SA_B) x 100\n")
	fmt.Fprintf(w, "%-22s %8s %10s %10s\n", "Variable", "Ratio", "3D Error", "4D Error")
	var last string
	for _, row := range r.Rows {
		label := row.Variable
		if label == last {
			label = ""
		} else {
			last = label
		}
		fmt.Fprintf(w, "%-22s %6g:1 %9.2f%% %9.2f%%\n", label, row.Ratio, row.Error3D, row.Error4D)
	}
}

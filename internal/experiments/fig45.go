package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stwave/internal/core"
	"stwave/internal/flow"
	"stwave/internal/grid"
	"stwave/internal/isosurface"
	"stwave/internal/render"
	"stwave/internal/wavelet"
)

// Figures 4 and 5 of the paper are qualitative: Figure 4 shows individual
// pathlines from original/4D/3D data at 128:1 diverging over time, Figure 5
// shows isosurface renderings. These runners regenerate the equivalent
// artifacts as image files: a top-down pathline plot (Figure 4) and
// cloud-isosurface mask slices from each data version (Figure 5).

// RunFig4 writes fig4-pathlines.pgm into dir: a top-down (XY) plot of a few
// pathlines advected through original (brightest), 4D-compressed (medium),
// and 3D-compressed (dim) winds at 128:1, the paper's Figure 4 comparison.
// It returns the written file path and the final-position gap between each
// compressed version and the baseline, averaged over the plotted particles.
func RunFig4(sc Scale, dir string, progress io.Writer) (path string, gap3D, gap4D float64, err error) {
	slices := sc.TornadoSlices / 2
	if slices < 20 {
		slices = 20
	}
	uSeq, vSeq, wSeq, err := TornadoVelocitySeries(sc, slices)
	if err != nil {
		return "", 0, 0, err
	}
	m, err := tornadoModel(sc)
	if err != nil {
		return "", 0, 0, err
	}
	cfg := m.Config()
	dx, dy, dz := m.Spacing()
	dom := flow.Domain{
		Origin:  flow.Vec3{X: m.CellX(0), Y: m.CellY(0), Z: m.CellZ(0)},
		Spacing: flow.Vec3{X: dx, Y: dy, Z: dz},
	}
	mkSeries := func(u, v, w *grid.Window) (*flow.VectorSeries, error) {
		var sl []flow.VectorSlice
		for i := range u.Slices {
			sl = append(sl, flow.VectorSlice{U: u.Slices[i], V: v.Slices[i], W: w.Slices[i], Time: u.Times[i]})
		}
		return flow.NewVectorSeries(dom, sl)
	}
	compress := func(seq *grid.Window, mode core.Mode) (*grid.Window, error) {
		var opts core.Options
		if mode == core.Spatial3D {
			opts = BaseOptions3D(128, sc.Workers)
		} else {
			opts = BaseOptions4D(128, 18, sc.Workers)
			opts.TemporalKernel = wavelet.CDF97
		}
		comp, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		ws := opts.WindowSize
		if mode == core.Spatial3D {
			ws = 1
		}
		chunks, err := seq.Partition(ws)
		if err != nil {
			return nil, err
		}
		out := grid.NewWindow(seq.Dims)
		for _, ch := range chunks {
			recon, _, err := comp.RoundTrip(ch)
			if err != nil {
				return nil, err
			}
			for i := range recon.Slices {
				if err := out.Append(recon.Slices[i], recon.Times[i]); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	baseline, err := mkSeries(uSeq, vSeq, wSeq)
	if err != nil {
		return "", 0, 0, err
	}
	versions := map[string]*flow.VectorSeries{"orig": baseline}
	for _, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
		cu, err := compress(uSeq, mode)
		if err != nil {
			return "", 0, 0, err
		}
		cv, err := compress(vSeq, mode)
		if err != nil {
			return "", 0, 0, err
		}
		cw, err := compress(wSeq, mode)
		if err != nil {
			return "", 0, 0, err
		}
		vs, err := mkSeries(cu, cv, cw)
		if err != nil {
			return "", 0, 0, err
		}
		versions[mode.String()] = vs
	}

	t0 := uSeq.Times[0]
	duration := uSeq.Times[len(uSeq.Times)-1] - t0
	opt := flow.AdvectOptions{Dt: sc.PathlineDt, Steps: int(duration / sc.PathlineDt)}
	seeds := flow.Rake(
		flow.Vec3{X: cfg.Lx/3 - cfg.CoreRadius, Y: cfg.Ly / 3, Z: 0.04 * cfg.Lz},
		flow.Vec3{X: cfg.Lx/3 + cfg.CoreRadius, Y: cfg.Ly / 3, Z: 0.04 * cfg.Lz},
		4)
	paths := map[string][]*flow.Pathline{}
	for name, vs := range versions {
		fprintf(progress, "fig4: advecting %s\n", name)
		pls, err := flow.AdvectAll(vs, seeds, t0, opt)
		if err != nil {
			return "", 0, 0, err
		}
		paths[name] = pls
	}

	// Plot top-down: map physical XY onto an image.
	const imgN = 360
	im := render.NewImage(imgN, imgN)
	plot := func(pls []*flow.Pathline, intensity float64) {
		for _, pl := range pls {
			for _, p := range pl.Points {
				px := int(p.X / cfg.Lx * imgN)
				py := int(p.Y / cfg.Ly * imgN)
				if px < 0 || py < 0 || px >= imgN || py >= imgN {
					continue
				}
				if im.At(px, py) < intensity {
					im.Set(px, py, intensity)
				}
			}
		}
	}
	plot(paths["3D"], 0.35)
	plot(paths["4D"], 0.65)
	plot(paths["orig"], 1.0)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, 0, err
	}
	path = filepath.Join(dir, "fig4-pathlines.pgm")
	f, err := os.Create(path)
	if err != nil {
		return "", 0, 0, err
	}
	defer f.Close()
	if err := im.WritePGM(f); err != nil {
		return "", 0, 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, 0, err
	}

	meanGap := func(name string) float64 {
		var sum float64
		for i, pl := range paths[name] {
			sum += pl.End().Dist(paths["orig"][i].End())
		}
		return sum / float64(len(seeds))
	}
	return path, meanGap("3D"), meanGap("4D"), nil
}

// RunFig5 writes three PGM images into dir — the cloud-mixing-ratio
// isosurface mask (a mid-level slice of inside/outside at the paper's
// isovalue) from original, 4D, and 3D data at 64:1 — plus returns the
// surface areas measured on each full 3D field, the quantitative core of
// the paper's Figure 5 / Table III story.
func RunFig5(sc Scale, dir string, progress io.Writer) (paths []string, areaOrig, area3D, area4D float64, err error) {
	const windowSize = 18
	const isovalue = 1.0
	seq, err := TornadoSeries(sc, TornadoCloudRatio)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if seq.Len() < windowSize {
		return nil, 0, 0, 0, fmt.Errorf("experiments: need %d slices", windowSize)
	}
	win := grid.NewWindow(seq.Dims)
	for i := 0; i < windowSize; i++ {
		if err := win.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, 0, 0, 0, err
		}
	}
	m, err := tornadoModel(sc)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	dx, dy, dz := m.Spacing()
	iopt := isosurface.Options{SpacingX: dx, SpacingY: dy, SpacingZ: dz}
	evalIdx := windowSize / 2

	version := func(mode core.Mode) (*grid.Field3D, error) {
		var opts core.Options
		if mode == core.Spatial3D {
			opts = BaseOptions3D(64, sc.Workers)
		} else {
			opts = BaseOptions4D(64, windowSize, sc.Workers)
		}
		comp, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		recon, _, err := comp.RoundTrip(win)
		if err != nil {
			return nil, err
		}
		return recon.Slices[evalIdx], nil
	}

	fields := map[string]*grid.Field3D{"orig": win.Slices[evalIdx]}
	if fields["3D"], err = version(core.Spatial3D); err != nil {
		return nil, 0, 0, 0, err
	}
	if fields["4D"], err = version(core.Spatiotemporal4D); err != nil {
		return nil, 0, 0, 0, err
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, 0, 0, err
	}
	areas := map[string]float64{}
	for _, name := range []string{"orig", "4D", "3D"} {
		field := fields[name]
		mesh, err := isosurface.Extract(field, isovalue, iopt)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		areas[name] = mesh.SurfaceArea()
		fprintf(progress, "fig5: %s surface area %.4g (%d triangles)\n", name, areas[name], len(mesh.Triangles))

		// Mask slice at the cloud level: inside the isosurface = white.
		mask := grid.NewField3D(field.Dims.Nx, field.Dims.Ny, field.Dims.Nz)
		for i, v := range field.Data {
			if v >= isovalue {
				mask.Data[i] = 1
			}
		}
		im, err := render.SliceXY(mask, field.Dims.Nz/2)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		p := filepath.Join(dir, fmt.Sprintf("fig5-cloud-%s.pgm", name))
		f, err := os.Create(p)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		if err := im.WritePGM(f); err != nil {
			f.Close() //stlint:ignore uncheckederr the write failure is what matters; the final Close below is checked
			return nil, 0, 0, 0, err
		}
		if err := f.Close(); err != nil {
			return nil, 0, 0, 0, err
		}
		paths = append(paths, p)
	}
	return paths, areas["orig"], areas["3D"], areas["4D"], nil
}

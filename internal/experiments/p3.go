package experiments

import (
	"fmt"
	"io"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
)

// P3Row is one ratio point of the P3 study.
type P3Row struct {
	// Ratio3D is the baseline ratio R; the 4D variant runs at 2R on twice
	// the slices so both store the same byte budget.
	Ratio3D float64
	// StoredBytes3D/4D verify the equal-storage premise (ideal accounting).
	StoredBytes3D, StoredBytes4D int64
	// EvenNRMSE is the error on the slices both variants actually stored
	// (the res=1/2 sampling).
	Even3D, Even4D float64
	// OddNRMSE is the error on the held-out intermediate slices: the 3D
	// variant must interpolate them in time, the 4D variant stored them.
	Odd3D, Odd4D float64
}

// P3Result is the increase-temporal-resolution study.
type P3Result struct {
	Rows []P3Row
}

// RunP3 makes the paper's Proposition 3 concrete and measurable: with a
// fixed storage budget, a scientist can either store every other slice with
// 3D compression at ratio R (res=1/2, the common practice) or store every
// slice with 4D compression at ratio 2R (res=1). Both cost the same bytes.
// The study reconstructs both and evaluates error on the even (stored by
// both) and odd (held-out; 3D must linearly interpolate) slices of the
// original full-rate series.
func RunP3(sc Scale, progress io.Writer) (*P3Result, error) {
	seq, err := GhostSeries(sc, GhostVelocityX)
	if err != nil {
		return nil, err
	}
	// Work on an even number of slices, full windows of 20 at res=1.
	n := (seq.Len() / 20) * 20
	if n < 20 {
		return nil, fmt.Errorf("experiments: need >= 20 slices, have %d", seq.Len())
	}
	full := grid.NewWindow(seq.Dims)
	for i := 0; i < n; i++ {
		if err := full.Append(seq.Slices[i], seq.Times[i]); err != nil {
			return nil, err
		}
	}
	half, err := full.Subsample(2)
	if err != nil {
		return nil, err
	}

	res := &P3Result{}
	for _, ratio := range []float64{8, 16, 32, 64} {
		fprintf(progress, "p3: ratio %g:1\n", ratio)
		row := P3Row{Ratio3D: ratio}

		// 3D at R on the half-rate series.
		recon3, bytes3, err := roundTripSeq(half, BaseOptions3D(ratio, sc.Workers))
		if err != nil {
			return nil, err
		}
		row.StoredBytes3D = bytes3

		// 4D at 2R on the full-rate series (window 20).
		recon4, bytes4, err := roundTripSeq(full, BaseOptions4D(2*ratio, 20, sc.Workers))
		if err != nil {
			return nil, err
		}
		row.StoredBytes4D = bytes4

		evens3 := metrics.NewAccumulator()
		evens4 := metrics.NewAccumulator()
		odds3 := metrics.NewAccumulator()
		odds4 := metrics.NewAccumulator()
		for i := 0; i < n; i++ {
			orig := full.Slices[i].Data
			if i%2 == 0 {
				if err := evens3.Add(orig, recon3.Slices[i/2].Data); err != nil {
					return nil, err
				}
				if err := evens4.Add(orig, recon4.Slices[i].Data); err != nil {
					return nil, err
				}
			} else {
				// 3D variant: interpolate the missing slice from its
				// reconstructed neighbors (clamp at the end).
				lo := recon3.Slices[i/2]
				hiIdx := i/2 + 1
				if hiIdx >= recon3.Len() {
					hiIdx = recon3.Len() - 1
				}
				hi := recon3.Slices[hiIdx]
				interp := make([]float64, len(orig))
				for j := range interp {
					interp[j] = 0.5 * (lo.Data[j] + hi.Data[j])
				}
				if err := odds3.Add(orig, interp); err != nil {
					return nil, err
				}
				if err := odds4.Add(orig, recon4.Slices[i].Data); err != nil {
					return nil, err
				}
			}
		}
		row.Even3D, row.Even4D = evens3.NRMSE(), evens4.NRMSE()
		row.Odd3D, row.Odd4D = odds3.NRMSE(), odds4.NRMSE()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// roundTripSeq compresses a sequence in windows and returns the
// reconstruction plus the ideal stored bytes.
func roundTripSeq(seq *grid.Window, opts core.Options) (*grid.Window, int64, error) {
	comp, err := core.New(opts)
	if err != nil {
		return nil, 0, err
	}
	ws := opts.WindowSize
	if opts.Mode == core.Spatial3D {
		ws = 1
	}
	chunks, err := seq.Partition(ws)
	if err != nil {
		return nil, 0, err
	}
	out := grid.NewWindow(seq.Dims)
	var bytes int64
	for _, ch := range chunks {
		recon, cw, err := comp.RoundTrip(ch)
		if err != nil {
			return nil, 0, err
		}
		bytes += cw.IdealSizeBytes()
		for i := range recon.Slices {
			if err := out.Append(recon.Slices[i], recon.Times[i]); err != nil {
				return nil, 0, err
			}
		}
	}
	return out, bytes, nil
}

// Write renders the P3 table.
func (r *P3Result) Write(w io.Writer) {
	fmt.Fprintf(w, "P3 study — equal storage: 3D@R on res=1/2 vs 4D@2R on res=1 (Ghost velocity-x)\n")
	fmt.Fprintf(w, "%8s %12s %12s %14s %14s %14s %14s\n",
		"R", "3D bytes", "4D bytes", "even 3D", "even 4D", "held-out 3D", "held-out 4D")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6g:1 %12d %12d %14.4e %14.4e %14.4e %14.4e\n",
			row.Ratio3D, row.StoredBytes3D, row.StoredBytes4D,
			row.Even3D, row.Even4D, row.Odd3D, row.Odd4D)
	}
}

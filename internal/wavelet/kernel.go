// Package wavelet implements one-dimensional discrete wavelet transforms
// (DWT) suitable for lossy compression of scientific data.
//
// The transforms are "non-expansive": a signal of N samples produces exactly
// N coefficients for any N >= 1, including odd lengths. This is achieved by
// implementing the filter banks in their lifting factorization with
// whole-sample symmetric boundary extension, the same construction used by
// JPEG 2000 and by the VAPOR scientific-data codec that the paper builds on.
//
// Coefficients are scaled so that every kernel is approximately orthonormal
// (the analysis lowpass has DC gain sqrt(2) per level). This matters for
// compression: magnitude thresholding across decomposition levels is only
// meaningful when coefficient magnitudes at different levels are commensurate.
package wavelet

import (
	"fmt"
	"math"
)

// Kernel identifies a wavelet filter bank.
type Kernel int

const (
	// CDF97 is the Cohen-Daubechies-Feauveau 9/7 biorthogonal kernel
	// (filter sizes 9 analysis lowpass / 7 analysis highpass). It is the
	// paper's default spatial kernel and one of the two temporal
	// candidates.
	CDF97 Kernel = iota
	// CDF53 is the Cohen-Daubechies-Feauveau 5/3 biorthogonal kernel
	// (LeGall 5/3). Its shorter support permits one more transform level
	// than CDF 9/7 at each of the paper's window sizes.
	CDF53
	// Haar is the 2-tap orthogonal Haar kernel, included as the shortest
	// possible symmetric-free baseline.
	Haar
	// Daub4 is the 4-tap orthogonal Daubechies kernel (db2), included for
	// ablation studies; it is not symmetric, so boundaries use periodic
	// extension and the transform is only non-expansive for even lengths.
	Daub4
)

// String returns the conventional name of the kernel.
func (k Kernel) String() string {
	switch k {
	case CDF97:
		return "CDF 9/7"
	case CDF53:
		return "CDF 5/3"
	case Haar:
		return "Haar"
	case Daub4:
		return "Daub4"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// Slug returns the kernel's flag spelling ("cdf97", "cdf53", "haar",
// "daub4"): lowercase with no separators, suitable as a metric-name
// component or file-name fragment.
func (k Kernel) Slug() string {
	return normalizeKernelName(k.String())
}

// FilterSize returns the support length used by the paper's Equation 2 to
// bound the number of transform levels: the length of the longer (analysis
// lowpass) filter.
func (k Kernel) FilterSize() int {
	switch k {
	case CDF97:
		return 9
	case CDF53:
		return 5
	case Haar:
		return 2
	case Daub4:
		return 4
	}
	return 0
}

// Valid reports whether k names a known kernel.
func (k Kernel) Valid() bool {
	switch k {
	case CDF97, CDF53, Haar, Daub4:
		return true
	}
	return false
}

// ParseKernel converts a human-readable kernel name ("cdf97", "cdf9/7",
// "CDF 9/7", "cdf53", "haar", "daub4", ...) into a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch normalizeKernelName(s) {
	case "cdf97":
		return CDF97, nil
	case "cdf53":
		return CDF53, nil
	case "haar":
		return Haar, nil
	case "daub4", "db2":
		return Daub4, nil
	}
	return 0, fmt.Errorf("wavelet: unknown kernel %q", s)
}

func normalizeKernelName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == ' ' || c == '/' || c == '-' || c == '_' || c == '.':
			// skip separators
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Lifting-step constants for the CDF 9/7 kernel (ITU-T T.800 / JPEG 2000
// irreversible transform).
const (
	cdf97Alpha = -1.586134342059924
	cdf97Beta  = -0.052980118572961
	cdf97Gamma = 0.882911075530934
	cdf97Delta = 0.443506852043971
)

// cdf97UnscaledDC is the DC gain of the unscaled CDF 9/7 lifting ladder:
// applying the four lifting steps to a constant-1 signal leaves the even
// (lowpass) samples at this value. The published constant K = 1.230174...
// is exactly this gain.
const cdf97UnscaledDC = 1.230174104914001

// Scale factors applied after the lifting ladder so each kernel's analysis
// lowpass has DC gain sqrt(2) (orthonormal-like normalization).
var (
	cdf97ScaleLo = math.Sqrt2 / cdf97UnscaledDC // ~1.149604398
	cdf97ScaleHi = cdf97UnscaledDC / math.Sqrt2
	cdf53ScaleLo = math.Sqrt2 // unscaled 5/3 lifting has DC gain 1
	cdf53ScaleHi = 1 / math.Sqrt2
)

// Daubechies-4 (db2) orthonormal filter coefficients, kept untyped so the
// generic kernels instantiate them at either precision with one correctly
// rounded conversion.
const (
	daub4H0 = 0.48296291314453414
	daub4H1 = 0.8365163037378079
	daub4H2 = 0.22414386804185735
	daub4H3 = -0.12940952255126037
)

var daub4Lo = [4]float64{daub4H0, daub4H1, daub4H2, daub4H3}

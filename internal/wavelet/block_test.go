package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

// TestBlockBitIdentical pins the blocked kernels to the scalar ones: for
// every kernel, signal length (odd and even, degenerate 1 and 2), and
// lane count, running ForwardStepBlock/InverseStepBlock on a slab of L
// random signals must produce bit-for-bit the result of running
// ForwardStep/InverseStep on each signal alone.
func TestBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kernels := []Kernel{CDF97, CDF53, Haar, Daub4}
	for _, k := range kernels {
		for n := 1; n <= 41; n++ {
			for _, L := range []int{1, 2, 3, 5, 8, 17} {
				// Build L random signals, both as scalar copies and a
				// sample-major slab.
				signals := make([][]float64, L)
				slab := make([]float64, n*L)
				for j := 0; j < L; j++ {
					signals[j] = make([]float64, n)
					for i := 0; i < n; i++ {
						v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
						signals[j][i] = v
						slab[i*L+j] = v
					}
				}

				scratchS := make([]float64, n)
				scratchB := make([]float64, n*L)
				for j := 0; j < L; j++ {
					ForwardStep(k, signals[j], scratchS)
				}
				ForwardStepBlock(k, slab, n, L, scratchB)
				compareSlab(t, k, n, L, "forward", signals, slab)

				for j := 0; j < L; j++ {
					InverseStep(k, signals[j], scratchS)
				}
				InverseStepBlock(k, slab, n, L, scratchB)
				compareSlab(t, k, n, L, "inverse", signals, slab)
			}
		}
	}
}

func compareSlab(t *testing.T, k Kernel, n, L int, stage string, signals [][]float64, slab []float64) {
	t.Helper()
	for j := 0; j < L; j++ {
		for i := 0; i < n; i++ {
			want := signals[j][i]
			got := slab[i*L+j]
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%v n=%d L=%d %s: lane %d sample %d: blocked %v (bits %x) != scalar %v (bits %x)",
					k, n, L, stage, j, i, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestBlockMultiLevel runs a multi-level pyramid through the blocked
// kernel the way the temporal transform does (shrinking prefixes of the
// slab) and checks bit-identity against the scalar pyramid.
func TestBlockMultiLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []Kernel{CDF97, CDF53, Haar} {
		for _, n := range []int{10, 20, 40} {
			levels := MaxLevels(k, n)
			const L = 6
			signals := make([][]float64, L)
			slab := make([]float64, n*L)
			for j := 0; j < L; j++ {
				signals[j] = make([]float64, n)
				for i := 0; i < n; i++ {
					v := rng.NormFloat64()
					signals[j][i] = v
					slab[i*L+j] = v
				}
			}
			lens := make([]int, 0, levels)
			for m, l := n, 0; l < levels && m >= 2; l++ {
				lens = append(lens, m)
				m = approxLen(m)
			}

			scratchS := make([]float64, n)
			scratchB := make([]float64, n*L)
			for _, ln := range lens {
				for j := 0; j < L; j++ {
					ForwardStep(k, signals[j][:ln], scratchS)
				}
				ForwardStepBlock(k, slab[:ln*L], ln, L, scratchB)
			}
			compareSlab(t, k, n, L, "pyramid-forward", signals, slab)

			for i := len(lens) - 1; i >= 0; i-- {
				ln := lens[i]
				for j := 0; j < L; j++ {
					InverseStep(k, signals[j][:ln], scratchS)
				}
				InverseStepBlock(k, slab[:ln*L], ln, L, scratchB)
			}
			compareSlab(t, k, n, L, "pyramid-inverse", signals, slab)
		}
	}
}

// TestBlockDegenerate checks n < 2 slabs are untouched, matching the
// scalar step's contract.
func TestBlockDegenerate(t *testing.T) {
	slab := []float64{1.5, -2.5, 3.5}
	scratch := make([]float64, 3)
	ForwardStepBlock(CDF97, slab, 1, 3, scratch)
	InverseStepBlock(CDF97, slab, 1, 3, scratch)
	want := []float64{1.5, -2.5, 3.5}
	for i := range want {
		if math.Float64bits(slab[i]) != math.Float64bits(want[i]) {
			t.Fatalf("degenerate slab modified: %v", slab)
		}
	}
}

package wavelet

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWaveletRoundtrip drives Transform1D/Inverse1D with arbitrary
// signals, both kernels, and every legal level count: the inverse must
// reproduce the input to within a tight relative tolerance. This is the
// perfect-reconstruction property the whole pipeline leans on — lossiness
// is supposed to come only from thresholding, never from the transform.
// FuzzWaveletRoundtrip32 is the float32 instantiation of the same
// perfect-reconstruction property: the single-precision ladder must
// invert to within a small multiple of float32 machine epsilon, with no
// widening anywhere in the loop (the arithmetic runs in float32).
func FuzzWaveletRoundtrip32(f *testing.F) {
	seed := make([]byte, 0, 17*4+2)
	for i := 0; i < 17; i++ {
		seed = binary.LittleEndian.AppendUint32(seed, math.Float32bits(float32(i)*0.37-3))
	}
	f.Add(append(seed, 1, 3))
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 200, 0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		kernel := CDF97
		if data[0]&1 == 1 {
			kernel = CDF53
		}
		levelSeed := int(data[1])
		data = data[2:]

		n := len(data) / 4
		if n == 0 || n > 1<<12 {
			return
		}
		orig := make([]float32, n)
		maxAbs := float32(0)
		for i := range orig {
			v := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || abs32(v) > 1e30 {
				v = float32(math.Mod(float64(math.Float32frombits(math.Float32bits(v)&(1<<28-1))), 1e6))
			}
			orig[i] = v
			if a := abs32(v); a > maxAbs {
				maxAbs = a
			}
		}

		maxL := MaxLevels(kernel, n)
		if maxL < 0 {
			t.Fatalf("MaxLevels(%v, %d) = %d", kernel, n, maxL)
		}
		levels := 0
		if maxL > 0 {
			levels = levelSeed % (maxL + 1)
		}

		work := make([]float32, n)
		copy(work, orig)
		scratch := make([]float32, n)
		if err := Transform1D(kernel, work, levels, scratch); err != nil {
			t.Fatalf("Transform1D[float32](%v, n=%d, levels=%d): %v", kernel, n, levels, err)
		}
		if err := Inverse1D(kernel, work, levels, scratch); err != nil {
			t.Fatalf("Inverse1D[float32](%v, n=%d, levels=%d): %v", kernel, n, levels, err)
		}

		// float32 epsilon is ~1.2e-7; a fixed ladder of adds and scales
		// keeps the error a small multiple of that per level.
		tol := 1e-4 * math.Max(float64(maxAbs), 1)
		for i := range orig {
			if d := math.Abs(float64(work[i]) - float64(orig[i])); !(d <= tol) {
				t.Fatalf("%v n=%d levels=%d: sample %d: got %g want %g (|diff| %g > tol %g)",
					kernel, n, levels, i, work[i], orig[i], d, tol)
			}
		}
	})
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func FuzzWaveletRoundtrip(f *testing.F) {
	seed := make([]byte, 0, 17*8+2)
	for i := 0; i < 17; i++ {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(float64(i)*0.37-3))
	}
	f.Add(append(seed, 1, 3))
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 200, 0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		kernel := CDF97
		if data[0]&1 == 1 {
			kernel = CDF53
		}
		levelSeed := int(data[1])
		data = data[2:]

		n := len(data) / 8
		if n == 0 || n > 1<<12 {
			return
		}
		orig := make([]float64, n)
		maxAbs := 0.0
		for i := range orig {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			// Keep the signal finite and moderate: NaN/Inf propagate
			// through any linear filter, and near-overflow magnitudes turn
			// rounding error into Inf. Map them into a bounded range.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = math.Mod(math.Float64frombits(math.Float64bits(v)&(1<<60-1)), 1e6)
			}
			orig[i] = v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}

		maxL := MaxLevels(kernel, n)
		if maxL < 0 {
			t.Fatalf("MaxLevels(%v, %d) = %d", kernel, n, maxL)
		}
		levels := 0
		if maxL > 0 {
			levels = levelSeed % (maxL + 1)
		}

		work := make([]float64, n)
		copy(work, orig)
		scratch := make([]float64, n)
		if err := Transform1D(kernel, work, levels, scratch); err != nil {
			t.Fatalf("Transform1D(%v, n=%d, levels=%d): %v", kernel, n, levels, err)
		}
		if err := Inverse1D(kernel, work, levels, scratch); err != nil {
			t.Fatalf("Inverse1D(%v, n=%d, levels=%d): %v", kernel, n, levels, err)
		}

		// Tolerance is relative to the largest input magnitude: lifting
		// steps are a fixed sequence of adds and scales, so error stays a
		// small multiple of machine epsilon per level.
		tol := 1e-9 * math.Max(maxAbs, 1)
		for i := range orig {
			if d := math.Abs(work[i] - orig[i]); !(d <= tol) {
				t.Fatalf("%v n=%d levels=%d: sample %d: got %g want %g (|diff| %g > tol %g)",
					kernel, n, levels, i, work[i], orig[i], d, tol)
			}
		}
	})
}

package wavelet_test

import (
	"fmt"
	"math"

	"stwave/internal/wavelet"
)

// Example demonstrates the basic forward/inverse transform and the
// information compaction that makes compression work: a smooth signal's
// energy concentrates into few coefficients.
func Example() {
	n := 64
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
	}
	levels := wavelet.MaxLevels(wavelet.CDF97, n)
	if err := wavelet.Transform1D(wavelet.CDF97, signal, levels, nil); err != nil {
		panic(err)
	}
	big := 0
	for _, c := range signal {
		if math.Abs(c) > 1e-3 {
			big++
		}
	}
	fmt.Printf("levels: %d\n", levels)
	fmt.Printf("coefficients above 1e-3: %d of %d\n", big, n)
	// Output:
	// levels: 3
	// coefficients above 1e-3: 23 of 64
}

// ExampleMaxLevels reproduces the paper's Equation 2 table: the temporal
// transform depth each kernel supports at each window size.
func ExampleMaxLevels() {
	for _, ws := range []int{10, 20, 40} {
		fmt.Printf("window %2d: CDF 9/7 -> %d levels, CDF 5/3 -> %d levels\n",
			ws,
			wavelet.MaxLevels(wavelet.CDF97, ws),
			wavelet.MaxLevels(wavelet.CDF53, ws))
	}
	// Output:
	// window 10: CDF 9/7 -> 1 levels, CDF 5/3 -> 2 levels
	// window 20: CDF 9/7 -> 2 levels, CDF 5/3 -> 3 levels
	// window 40: CDF 9/7 -> 3 levels, CDF 5/3 -> 4 levels
}

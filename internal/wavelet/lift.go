package wavelet

import "stwave/internal/num"

// This file implements the lifting-scheme filter banks. A single forward
// pass works on the interleaved signal x[0..n-1]: even indices carry the
// (future) approximation samples and odd indices the detail samples. Each
// lifting step adds a scaled sum of the two opposite-parity neighbours to
// every sample of one parity:
//
//	x[i] += c * (x[i-1] + x[i+1])   for all i of the step's parity
//
// Out-of-range neighbour indices are reflected with whole-sample symmetry
// (-1 -> 1, n -> n-2), which preserves parity and yields a non-expansive,
// perfectly reconstructing transform for every length n >= 2 with symmetric
// kernels. After the ladder, samples are de-interleaved into
// [approximation | detail] halves and scaled.
//
// Every kernel is generic over num.Float: the float64 instantiation is
// bit-identical to the original scalar code (lifting constants are untyped
// and scale factors are converted with F(...), which is the identity at
// float64), and the float32 instantiation performs every operation in
// single precision with the same operand ordering, so each precision is
// bit-stable on its own.

// reflect maps an out-of-range index into [0, n-1] using whole-sample
// symmetric extension. n must be >= 2. Indices more than n-1 outside the
// range are folded repeatedly (only needed for pathological n).
func reflect(i, n int) int {
	for i < 0 || i >= n {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
	}
	return i
}

// liftStep applies one lifting step in place to the interleaved signal.
// parity selects which samples are updated (0 = even, 1 = odd); c is the
// lifting coefficient.
func liftStep[F num.Float](x []F, parity int, c F) {
	n := len(x)
	if n < 2 {
		return
	}
	// Interior samples need no reflection; handle boundaries separately so
	// the hot loop stays branch-free.
	start := parity
	if start == 0 {
		// x[0] neighbours are x[-1] -> x[1] and x[1].
		x[0] += c * 2 * x[1]
		start = 2
	}
	i := start
	if i >= 1 && i+1 < n {
		// Rebased slices plus a carried neighbour load: x[i+1] this
		// iteration is x[i-1] two samples later, so the loop does two
		// loads per sample instead of three and the compiler can prove
		// the remaining indices in bounds. Values and evaluation order
		// match the textbook x[i] += c*(x[i-1]+x[i+1]) exactly.
		xi := x[start : n-1]
		xp := x[start+1:]
		am := x[start-1]
		j := 0
		for ; j < len(xi); j += 2 {
			ap := xp[j]
			xi[j] += c * (am + ap)
			am = ap
		}
		i = start + j
	}
	if i == n-1 {
		// Last sample's right neighbour x[n] reflects to x[n-2].
		x[n-1] += c * (x[n-2] + x[n-2])
	}
}

// liftPairOddEven fuses two adjacent lifting steps — odd parity with
// coefficient ca, then even parity with cb — into one pass over x,
// software-pipelined so each even sample is updated as soon as both its
// odd neighbours are. Requires len(x) >= 2. Bit-identical to
// liftStep(x, 1, ca) followed by liftStep(x, 0, cb): every sample sees
// exactly the same operand values in the same expression shapes.
func liftPairOddEven[F num.Float](x []F, ca, cb F) {
	n := len(x)
	if n == 2 {
		m := x[0]
		x[1] += ca * (m + m)
		x[0] += cb * 2 * x[1]
		return
	}
	// Odd sample 1 and even sample 0, then the pipelined interior: odd
	// i+1 reads the still-original even neighbours, even i reads the two
	// odd neighbours just produced (am carried, ap fresh).
	am := x[1] + ca*(x[0]+x[2])
	x[1] = am
	x[0] += cb * 2 * am
	i := 2
	for ; i+2 < n; i += 2 {
		ap := x[i+1] + ca*(x[i]+x[i+2])
		x[i+1] = ap
		x[i] += cb * (am + ap)
		am = ap
	}
	if i+1 < n {
		// n even: the last odd sample's right neighbour reflects to n-2.
		m := x[i]
		ap := x[i+1] + ca*(m+m)
		x[i+1] = ap
		x[i] += cb * (am + ap)
	} else {
		// n odd: the last even sample's neighbours both reflect to n-2.
		x[i] += cb * (am + am)
	}
}

// liftPairDeinterleaveScaled fuses the ladder's last two lifting steps
// (odd ca, even cb) with the deinterleave+scale pass: one walk over x
// emits dst directly — odd results to the detail half scaled by hi, even
// results to the approximation half scaled by lo. x is left unmodified.
// Requires len(x) >= 2. Bit-identical to liftStep(x, 1, ca) followed by
// liftEvenDeinterleaveScaled(x, dst, cb, lo, hi).
func liftPairDeinterleaveScaled[F num.Float](x, dst []F, ca, cb, lo, hi F) {
	n := len(x)
	na := approxLen(n)
	if n == 2 {
		m := x[0]
		o := x[1] + ca*(m+m)
		dst[1] = o * hi
		dst[0] = (x[0] + cb*2*o) * lo
		return
	}
	am := x[1] + ca*(x[0]+x[2])
	dst[na] = am * hi
	dst[0] = (x[0] + cb*2*am) * lo
	i := 2
	for ; i+2 < n; i += 2 {
		ap := x[i+1] + ca*(x[i]+x[i+2])
		dst[na+i/2] = ap * hi
		dst[i/2] = (x[i] + cb*(am+ap)) * lo
		am = ap
	}
	if i+1 < n {
		// n even: last odd reflects right to n-2, then the last even.
		m := x[i]
		ap := x[i+1] + ca*(m+m)
		dst[na+i/2] = ap * hi
		dst[i/2] = (x[i] + cb*(am+ap)) * lo
	} else {
		// n odd: the last even sample's neighbours both reflect.
		dst[i/2] = (x[i] + cb*(am+am)) * lo
	}
}

// forwardLift runs the full analysis ladder for kernel k on the interleaved
// signal, then de-interleaves into dst as [approx | detail] and applies the
// normalization scales. len(dst) == len(x). x is clobbered.
func forwardLift[F num.Float](k Kernel, x, dst []F) {
	n := len(x)
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = x[0]
		return
	}
	switch k {
	case CDF97:
		liftPairOddEven(x, F(cdf97Alpha), F(cdf97Beta))
		liftPairDeinterleaveScaled(x, dst, F(cdf97Gamma), F(cdf97Delta), F(cdf97ScaleLo), F(cdf97ScaleHi))
	case CDF53:
		liftPairDeinterleaveScaled(x, dst, F(-0.5), F(0.25), F(cdf53ScaleLo), F(cdf53ScaleHi))
	case Haar:
		forwardHaar(x, dst)
	case Daub4:
		forwardDaub4(x, dst)
	default:
		copy(dst, x)
	}
}

// inverseLift is the exact inverse of forwardLift: src holds
// [approx | detail] coefficients, dst receives the reconstructed signal.
// len(src) == len(dst). src is not modified; dst is used as scratch.
func inverseLift[F num.Float](k Kernel, src, dst []F) {
	n := len(src)
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = src[0]
		return
	}
	switch k {
	case CDF97:
		interleaveScaledLiftEven(src, dst, F(1/cdf97ScaleLo), F(1/cdf97ScaleHi), F(-cdf97Delta))
		liftPairOddEven(dst, F(-cdf97Gamma), F(-cdf97Beta))
		liftStep(dst, 1, F(-cdf97Alpha))
	case CDF53:
		interleaveScaledLiftEven(src, dst, F(1/cdf53ScaleLo), F(1/cdf53ScaleHi), F(-0.25))
		liftStep(dst, 1, F(0.5))
	case Haar:
		inverseHaar(src, dst)
	case Daub4:
		inverseDaub4(src, dst)
	default:
		copy(dst, src)
	}
}

// approxLen returns the number of approximation coefficients produced from a
// signal of length n: ceil(n/2).
func approxLen(n int) int { return (n + 1) / 2 }

// interleaveScaledLiftEven fuses the interleave+scale expansion with the
// synthesis ladder's first even-parity lifting step: the odd (detail)
// samples are expanded first, then each even sample is scaled and lifted
// against the odd neighbours already in dst. Requires len(src) >= 2.
// Bit-identical to interleaving src as [approx*lo | detail*hi] and then
// running liftStep(dst, 0, c).
func interleaveScaledLiftEven[F num.Float](src, dst []F, lo, hi, c F) {
	n := len(src)
	na := approxLen(n)
	for i := 0; i < n-na; i++ {
		dst[2*i+1] = src[na+i] * hi
	}
	dst[0] = src[0]*lo + c*2*dst[1]
	i := 2
	for ; i+1 < n; i += 2 {
		dst[i] = src[i/2]*lo + c*(dst[i-1]+dst[i+1])
	}
	if i == n-1 {
		m := dst[n-2]
		dst[n-1] = src[na-1]*lo + c*(m+m)
	}
}

// forwardHaar computes the orthonormal Haar transform. For odd n the final
// unpaired sample is carried into the approximation band scaled by sqrt(2)
// — the lowpass DC gain — so that constant signals still compact perfectly
// at deeper levels; the transform stays non-expansive and perfectly
// reconstructing.
func forwardHaar[F num.Float](x, dst []F) {
	n := len(x)
	na := approxLen(n)
	const s = 0.7071067811865476 // 1/sqrt(2)
	const sqrt2 = 1.4142135623730951
	for i := 0; 2*i+1 < n; i++ {
		a, b := x[2*i], x[2*i+1]
		dst[i] = (a + b) * s
		dst[na+i] = (a - b) * s
	}
	if n%2 == 1 {
		dst[na-1] = x[n-1] * sqrt2
	}
}

func inverseHaar[F num.Float](src, dst []F) {
	n := len(src)
	na := approxLen(n)
	const s = 0.7071067811865476
	for i := 0; 2*i+1 < n; i++ {
		a, d := src[i], src[na+i]
		dst[2*i] = (a + d) * s
		dst[2*i+1] = (a - d) * s
	}
	if n%2 == 1 {
		dst[n-1] = src[na-1] * s
	}
}

// forwardDaub4 computes the orthonormal Daubechies-4 transform with periodic
// boundary extension. Requires even n (callers guarantee this via
// MaxLevels, which returns 0 levels for odd lengths with this kernel).
func forwardDaub4[F num.Float](x, dst []F) {
	n := len(x)
	if n%2 != 0 {
		copy(dst, x)
		return
	}
	na := n / 2
	h := [4]F{daub4H0, daub4H1, daub4H2, daub4H3}
	// Highpass is the quadrature mirror: g[k] = (-1)^k h[3-k].
	g := [4]F{h[3], -h[2], h[1], -h[0]}
	for i := 0; i < na; i++ {
		var lo, hi F
		for k := 0; k < 4; k++ {
			v := x[(2*i+k)%n]
			lo += h[k] * v
			hi += g[k] * v
		}
		dst[i] = lo
		dst[na+i] = hi
	}
}

func inverseDaub4[F num.Float](src, dst []F) {
	n := len(src)
	if n%2 != 0 {
		copy(dst, src)
		return
	}
	na := n / 2
	h := [4]F{daub4H0, daub4H1, daub4H2, daub4H3}
	g := [4]F{h[3], -h[2], h[1], -h[0]}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < na; i++ {
		lo, hi := src[i], src[na+i]
		for k := 0; k < 4; k++ {
			dst[(2*i+k)%n] += h[k]*lo + g[k]*hi
		}
	}
}

package wavelet

import "math"

// This file implements the lifting-scheme filter banks. A single forward
// pass works on the interleaved signal x[0..n-1]: even indices carry the
// (future) approximation samples and odd indices the detail samples. Each
// lifting step adds a scaled sum of the two opposite-parity neighbours to
// every sample of one parity:
//
//	x[i] += c * (x[i-1] + x[i+1])   for all i of the step's parity
//
// Out-of-range neighbour indices are reflected with whole-sample symmetry
// (-1 -> 1, n -> n-2), which preserves parity and yields a non-expansive,
// perfectly reconstructing transform for every length n >= 2 with symmetric
// kernels. After the ladder, samples are de-interleaved into
// [approximation | detail] halves and scaled.

// reflect maps an out-of-range index into [0, n-1] using whole-sample
// symmetric extension. n must be >= 2. Indices more than n-1 outside the
// range are folded repeatedly (only needed for pathological n).
func reflect(i, n int) int {
	for i < 0 || i >= n {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
	}
	return i
}

// liftStep applies one lifting step in place to the interleaved signal.
// parity selects which samples are updated (0 = even, 1 = odd); c is the
// lifting coefficient.
func liftStep(x []float64, parity int, c float64) {
	n := len(x)
	if n < 2 {
		return
	}
	// Interior samples need no reflection; handle boundaries separately so
	// the hot loop stays branch-free.
	start := parity
	if start == 0 {
		// x[0] neighbours are x[-1] -> x[1] and x[1].
		x[0] += c * 2 * x[1]
		start = 2
	}
	i := start
	for ; i+1 < n; i += 2 {
		x[i] += c * (x[i-1] + x[i+1])
	}
	if i == n-1 {
		// Last sample's right neighbour x[n] reflects to x[n-2].
		x[n-1] += c * (x[n-2] + x[n-2])
	}
}

// forwardLift runs the full analysis ladder for kernel k on the interleaved
// signal, then de-interleaves into dst as [approx | detail] and applies the
// normalization scales. len(dst) == len(x). x is clobbered.
func forwardLift(k Kernel, x, dst []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = x[0]
		return
	}
	switch k {
	case CDF97:
		liftStep(x, 1, cdf97Alpha)
		liftStep(x, 0, cdf97Beta)
		liftStep(x, 1, cdf97Gamma)
		liftStep(x, 0, cdf97Delta)
		deinterleaveScaled(x, dst, cdf97ScaleLo, cdf97ScaleHi)
	case CDF53:
		liftStep(x, 1, -0.5)
		liftStep(x, 0, 0.25)
		deinterleaveScaled(x, dst, cdf53ScaleLo, cdf53ScaleHi)
	case Haar:
		forwardHaar(x, dst)
	case Daub4:
		forwardDaub4(x, dst)
	default:
		copy(dst, x)
	}
}

// inverseLift is the exact inverse of forwardLift: src holds
// [approx | detail] coefficients, dst receives the reconstructed signal.
// len(src) == len(dst). src is not modified; dst is used as scratch.
func inverseLift(k Kernel, src, dst []float64) {
	n := len(src)
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = src[0]
		return
	}
	switch k {
	case CDF97:
		interleaveScaled(src, dst, 1/cdf97ScaleLo, 1/cdf97ScaleHi)
		liftStep(dst, 0, -cdf97Delta)
		liftStep(dst, 1, -cdf97Gamma)
		liftStep(dst, 0, -cdf97Beta)
		liftStep(dst, 1, -cdf97Alpha)
	case CDF53:
		interleaveScaled(src, dst, 1/cdf53ScaleLo, 1/cdf53ScaleHi)
		liftStep(dst, 0, -0.25)
		liftStep(dst, 1, 0.5)
	case Haar:
		inverseHaar(src, dst)
	case Daub4:
		inverseDaub4(src, dst)
	default:
		copy(dst, src)
	}
}

// approxLen returns the number of approximation coefficients produced from a
// signal of length n: ceil(n/2).
func approxLen(n int) int { return (n + 1) / 2 }

// deinterleaveScaled writes even samples of x (scaled by lo) to the first
// ceil(n/2) slots of dst and odd samples (scaled by hi) to the rest.
func deinterleaveScaled(x, dst []float64, lo, hi float64) {
	n := len(x)
	na := approxLen(n)
	for i := 0; i < na; i++ {
		dst[i] = x[2*i] * lo
	}
	for i := 0; i < n-na; i++ {
		dst[na+i] = x[2*i+1] * hi
	}
}

// interleaveScaled is the inverse of deinterleaveScaled.
func interleaveScaled(src, dst []float64, lo, hi float64) {
	n := len(src)
	na := approxLen(n)
	for i := 0; i < na; i++ {
		dst[2*i] = src[i] * lo
	}
	for i := 0; i < n-na; i++ {
		dst[2*i+1] = src[na+i] * hi
	}
}

// forwardHaar computes the orthonormal Haar transform. For odd n the final
// unpaired sample is carried into the approximation band scaled by sqrt(2)
// — the lowpass DC gain — so that constant signals still compact perfectly
// at deeper levels; the transform stays non-expansive and perfectly
// reconstructing.
func forwardHaar(x, dst []float64) {
	n := len(x)
	na := approxLen(n)
	const s = 0.7071067811865476 // 1/sqrt(2)
	for i := 0; 2*i+1 < n; i++ {
		a, b := x[2*i], x[2*i+1]
		dst[i] = (a + b) * s
		dst[na+i] = (a - b) * s
	}
	if n%2 == 1 {
		dst[na-1] = x[n-1] * math.Sqrt2
	}
}

func inverseHaar(src, dst []float64) {
	n := len(src)
	na := approxLen(n)
	const s = 0.7071067811865476
	for i := 0; 2*i+1 < n; i++ {
		a, d := src[i], src[na+i]
		dst[2*i] = (a + d) * s
		dst[2*i+1] = (a - d) * s
	}
	if n%2 == 1 {
		dst[n-1] = src[na-1] * s
	}
}

// forwardDaub4 computes the orthonormal Daubechies-4 transform with periodic
// boundary extension. Requires even n (callers guarantee this via
// MaxLevels, which returns 0 levels for odd lengths with this kernel).
func forwardDaub4(x, dst []float64) {
	n := len(x)
	if n%2 != 0 {
		copy(dst, x)
		return
	}
	na := n / 2
	h := daub4Lo
	// Highpass is the quadrature mirror: g[k] = (-1)^k h[3-k].
	g := [4]float64{h[3], -h[2], h[1], -h[0]}
	for i := 0; i < na; i++ {
		var lo, hi float64
		for k := 0; k < 4; k++ {
			v := x[(2*i+k)%n]
			lo += h[k] * v
			hi += g[k] * v
		}
		dst[i] = lo
		dst[na+i] = hi
	}
}

func inverseDaub4(src, dst []float64) {
	n := len(src)
	if n%2 != 0 {
		copy(dst, src)
		return
	}
	na := n / 2
	h := daub4Lo
	g := [4]float64{h[3], -h[2], h[1], -h[0]}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < na; i++ {
		lo, hi := src[i], src[na+i]
		for k := 0; k < 4; k++ {
			dst[(2*i+k)%n] += h[k]*lo + g[k]*hi
		}
	}
}

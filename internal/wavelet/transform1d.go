package wavelet

import (
	"fmt"

	"stwave/internal/num"
)

// Transform1D applies a multi-level forward DWT in place to data using the
// standard pyramid: each level transforms the approximation band left by the
// previous level. levels may be 0 (identity). scratch must have
// len(scratch) >= len(data); pass nil to allocate internally.
//
// The coefficient layout after L levels over a signal of length n is the
// usual Mallat ordering: [A_L | D_L | D_{L-1} | ... | D_1] where
// len(A_L)=ceil^L(n/2) and each detail band follows its approximation.
func Transform1D[F num.Float](k Kernel, data []F, levels int, scratch []F) error {
	if err := checkLevels(k, len(data), levels); err != nil {
		return err
	}
	if scratch == nil {
		scratch = make([]F, len(data))
	}
	n := len(data)
	for l := 0; l < levels; l++ {
		if n < 2 {
			break
		}
		copy(scratch[:n], data[:n])
		forwardLift(k, scratch[:n], data[:n])
		n = approxLen(n)
	}
	return nil
}

// Inverse1D undoes Transform1D with the same kernel and level count.
func Inverse1D[F num.Float](k Kernel, data []F, levels int, scratch []F) error {
	if err := checkLevels(k, len(data), levels); err != nil {
		return err
	}
	if scratch == nil {
		scratch = make([]F, len(data))
	}
	// Reconstruct from the coarsest level outward. Compute band lengths.
	lens := bandLengths(len(data), levels)
	for l := len(lens) - 1; l >= 0; l-- {
		n := lens[l]
		if n < 2 {
			continue
		}
		inverseLift(k, data[:n], scratch[:n])
		copy(data[:n], scratch[:n])
	}
	return nil
}

// bandLengths returns the signal lengths at each applied level (the length
// the forward transform saw at level l), outermost first.
func bandLengths(n, levels int) []int {
	lens := make([]int, 0, levels)
	for l := 0; l < levels && n >= 2; l++ {
		lens = append(lens, n)
		n = approxLen(n)
	}
	return lens
}

// checkLevels validates the level count against signal length and kernel.
func checkLevels(k Kernel, n, levels int) error {
	if !k.Valid() {
		return fmt.Errorf("wavelet: invalid kernel %d", int(k))
	}
	if levels < 0 {
		return fmt.Errorf("wavelet: negative level count %d", levels)
	}
	if max := MaxLevels(k, n); levels > max {
		return fmt.Errorf("wavelet: %d levels exceeds maximum %d for kernel %v and length %d", levels, max, k, n)
	}
	return nil
}

// MaxLevels implements the paper's Equation 2:
//
//	J = floor(log2(len / filterSize)) + 1
//
// clamped to be non-negative. With a window of 10, CDF 9/7 (filter size 9)
// permits 1 level while CDF 5/3 (filter size 5) permits 2, matching the
// paper's Section IV-B discussion. For the Daub4 kernel (periodic
// extension), odd signal lengths return 0.
func MaxLevels(k Kernel, n int) int {
	fs := k.FilterSize()
	if fs <= 0 || n < fs {
		return 0
	}
	if k == Daub4 && n%2 != 0 {
		return 0
	}
	j := 0
	for m := n / fs; m >= 1; m >>= 1 {
		j++
	}
	return j
}

// ApproxLenAfter returns the approximation-band length after applying
// `levels` levels to a signal of length n.
func ApproxLenAfter(n, levels int) int {
	for l := 0; l < levels && n >= 2; l++ {
		n = approxLen(n)
	}
	return n
}

// ForwardStep applies exactly one level of the forward transform to data,
// without level-count validation. It is the building block the
// multi-dimensional non-standard decomposition uses, where the level budget
// is computed once globally rather than per line. scratch must be at least
// len(data) long. Signals shorter than 2 samples are left unchanged.
func ForwardStep[F num.Float](k Kernel, data, scratch []F) {
	n := len(data)
	if n < 2 {
		return
	}
	copy(scratch[:n], data)
	forwardLift(k, scratch[:n], data)
}

// InverseStep undoes exactly one ForwardStep.
func InverseStep[F num.Float](k Kernel, data, scratch []F) {
	n := len(data)
	if n < 2 {
		return
	}
	inverseLift(k, data, scratch[:n])
	copy(data, scratch[:n])
}

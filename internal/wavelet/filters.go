package wavelet

// This file provides a direct convolution implementation of the CDF
// analysis/synthesis filter banks. It exists for two reasons: the explicit
// filter taps document exactly which wavelets these are, and the tests
// assert that the (faster) lifting implementation in lift.go computes the
// same transform, which guards both against regressions.

// CDF97AnalysisLowpass holds the 9 analysis lowpass taps of the CDF 9/7
// kernel, centered (index 4 is the center tap), normalized to DC gain
// sqrt(2).
var CDF97AnalysisLowpass = [9]float64{
	0.037828455506995,
	-0.023849465019380,
	-0.110624404418423,
	0.377402855612654,
	0.852698679009403,
	0.377402855612654,
	-0.110624404418423,
	-0.023849465019380,
	0.037828455506995,
}

// CDF97AnalysisHighpass holds the 7 analysis highpass taps (center index
// 3), normalized so the synthesis pair reconstructs exactly with the
// lowpass above.
var CDF97AnalysisHighpass = [7]float64{
	0.064538882628938,
	-0.040689417609558,
	-0.418092273222212,
	0.788485616405664,
	-0.418092273222212,
	-0.040689417609558,
	0.064538882628938,
}

// CDF53AnalysisLowpass holds the 5 analysis lowpass taps of the CDF 5/3
// (LeGall) kernel, normalized to DC gain sqrt(2).
var CDF53AnalysisLowpass = [5]float64{
	-0.176776695296637,
	0.353553390593274,
	1.060660171779821,
	0.353553390593274,
	-0.176776695296637,
}

// CDF53AnalysisHighpass holds the 3 analysis highpass taps.
var CDF53AnalysisHighpass = [3]float64{
	-0.353553390593274,
	0.707106781186547,
	-0.353553390593274,
}

// AnalysisFilters returns the analysis lowpass and highpass taps for a CDF
// kernel, centered at len/2. It returns nil slices for kernels without a
// published convolution form here (Haar, Daub4 — those are trivially their
// own documentation).
func AnalysisFilters(k Kernel) (lo, hi []float64) {
	switch k {
	case CDF97:
		return CDF97AnalysisLowpass[:], CDF97AnalysisHighpass[:]
	case CDF53:
		return CDF53AnalysisLowpass[:], CDF53AnalysisHighpass[:]
	}
	return nil, nil
}

// ConvolveStep computes one analysis level by direct convolution with
// whole-sample symmetric extension, writing [approx | detail] into dst.
// It is the reference implementation; production code uses the lifting
// path (ForwardStep), which the tests verify against this.
//
// Approximation coefficients a[i] come from filtering at even sample
// positions 2i; detail coefficients d[i] from odd positions 2i+1, matching
// the lifting layout for both even and odd lengths.
func ConvolveStep(k Kernel, src, dst []float64) bool {
	lo, hi := AnalysisFilters(k)
	if lo == nil {
		return false
	}
	n := len(src)
	if n < 2 {
		copy(dst, src)
		return true
	}
	na := approxLen(n)
	loC := len(lo) / 2
	hiC := len(hi) / 2
	for i := 0; i < na; i++ {
		center := 2 * i
		var sum float64
		for t, c := range lo {
			sum += c * src[reflect(center+t-loC, n)]
		}
		dst[i] = sum
	}
	for i := 0; i < n-na; i++ {
		center := 2*i + 1
		var sum float64
		for t, c := range hi {
			sum += c * src[reflect(center+t-hiC, n)]
		}
		dst[na+i] = sum
	}
	return true
}

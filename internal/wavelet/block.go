package wavelet

import (
	"math"

	"stwave/internal/num"
)

// This file implements the blocked (multi-lane) form of the lifting filter
// banks: the same ladder as lift.go applied to L independent signals at
// once. The signals live interleaved in a sample-major slab — sample i of
// lane j at slab[i*L+j] — so every lifting step's inner loop walks L
// contiguous floats instead of chasing one strided element per signal.
// The multi-dimensional transforms gather a tile of L neighbouring lines
// (or grid-point time series) into such a slab with plain copies, run the
// blocked kernel, and scatter back: the strided memory walk happens once
// per tile as bulk copies rather than once per lifting step per element.
//
// Every arithmetic expression here matches lift.go operation for
// operation, in the same order, so each lane's result is bit-identical to
// running the scalar kernel on that signal alone. The equivalence is
// pinned by TestBlockBitIdentical across all kernels, lengths, and lane
// counts; any change to one file must be mirrored in the other.
//
// Inner loops index the slab directly with offsets whose bounds the
// compiler can prove, rather than materializing per-row subslices — the
// lifting ladder is the hottest code in the pipeline and bounds checks
// in it are measurable.

// liftStepBlock applies one lifting step to every lane of the slab
// holding n samples x L lanes. parity and c as in liftStep.
func liftStepBlock[F num.Float](x []F, n, L int, parity int, c F) {
	if n < 2 || L < 1 {
		return
	}
	x = x[:n*L]
	start := parity
	if start == 0 {
		// Sample 0's neighbours both reflect to sample 1: += c*2*x[1].
		c2 := c * 2
		r0 := x[:L]
		r1 := x[L : 2*L]
		r1 = r1[:len(r0)]
		for j, v := range r0 {
			r0[j] = v + c2*r1[j]
		}
		start = 2
	}
	i := start
	for ; i+1 < n; i += 2 {
		b := i * L
		ri := x[b : b+L]
		rm := x[b-L : b]
		rp := x[b+L : b+2*L]
		rm = rm[:len(ri)]
		rp = rp[:len(ri)]
		for j, v := range ri {
			ri[j] = v + c*(rm[j]+rp[j])
		}
	}
	if i == n-1 {
		// Last sample's right neighbour reflects to sample n-2.
		b := (n - 1) * L
		ri := x[b : b+L]
		rm := x[b-L : b]
		rm = rm[:len(ri)]
		for j, v := range ri {
			m := rm[j]
			ri[j] = v + c*(m+m)
		}
	}
}

// liftPairOddEvenBlock is liftPairOddEven per lane: two adjacent lifting
// steps (odd ca, then even cb) fused into one pass over the slab, each
// even row updated as soon as both odd neighbour rows are. Requires
// n >= 2. Bit-identical per lane to liftStepBlock(x, n, L, 1, ca)
// followed by liftStepBlock(x, n, L, 0, cb).
func liftPairOddEvenBlock[F num.Float](x []F, n, L int, ca, cb F) {
	x = x[:n*L]
	if n == 2 {
		r0 := x[:L]
		r1 := x[L : 2*L]
		r1 = r1[:len(r0)]
		for j, v := range r1 {
			m := r0[j]
			r1[j] = v + ca*(m+m)
		}
		cb2 := cb * 2
		for j, v := range r0 {
			r0[j] = v + cb2*r1[j]
		}
		return
	}
	{
		// Odd row 1 (interior), then even row 0 against it.
		r1 := x[L : 2*L]
		r0 := x[:L]
		r2 := x[2*L : 3*L]
		r0 = r0[:len(r1)]
		r2 = r2[:len(r1)]
		for j, v := range r1 {
			r1[j] = v + ca*(r0[j]+r2[j])
		}
		cb2 := cb * 2
		d := x[:L]
		r1 = r1[:len(d)]
		for j, v := range d {
			d[j] = v + cb2*r1[j]
		}
	}
	i := 2
	for ; i+2 < n; i += 2 {
		b := i * L
		// Odd row i+1 reads the still-original even rows i and i+2.
		ro := x[b+L : b+2*L]
		re0 := x[b : b+L]
		re2 := x[b+2*L : b+3*L]
		re0 = re0[:len(ro)]
		re2 = re2[:len(ro)]
		for j, v := range ro {
			ro[j] = v + ca*(re0[j]+re2[j])
		}
		// Even row i reads the updated odd rows i-1 and i+1.
		ri := x[b : b+L]
		rm := x[b-L : b]
		rp := x[b+L : b+2*L]
		rm = rm[:len(ri)]
		rp = rp[:len(ri)]
		for j, v := range ri {
			ri[j] = v + cb*(rm[j]+rp[j])
		}
	}
	if i+1 < n {
		// n even: odd row n-1 reflects right to n-2, then even row n-2.
		b := i * L
		ro := x[b+L : b+2*L]
		re := x[b : b+L]
		re = re[:len(ro)]
		for j, v := range ro {
			m := re[j]
			ro[j] = v + ca*(m+m)
		}
		ri := x[b : b+L]
		rm := x[b-L : b]
		rp := x[b+L : b+2*L]
		rm = rm[:len(ri)]
		rp = rp[:len(ri)]
		for j, v := range ri {
			ri[j] = v + cb*(rm[j]+rp[j])
		}
	} else {
		// n odd: even row n-1's neighbours both reflect to n-2.
		b := i * L
		ri := x[b : b+L]
		rm := x[b-L : b]
		rm = rm[:len(ri)]
		for j, v := range ri {
			m := rm[j]
			ri[j] = v + cb*(m+m)
		}
	}
}

// liftPairDeinterleaveScaledBlock is liftPairDeinterleaveScaled per lane:
// the ladder's last two lifting steps (odd ca, even cb) fused with the
// deinterleave+scale pass. Odd rows are updated in place in x as lifting
// neighbours; even results go straight to dst. Requires n >= 2.
// Bit-identical per lane to liftStepBlock(x, n, L, 1, ca) followed by the
// final even step + deinterleave+scale.
func liftPairDeinterleaveScaledBlock[F num.Float](x, dst []F, n, L int, ca, cb, lo, hi F) {
	x = x[:n*L]
	na := approxLen(n)
	if n == 2 {
		r0 := x[:L]
		r1 := x[L : 2*L]
		r1 = r1[:len(r0)]
		for j, v := range r1 {
			m := r0[j]
			r1[j] = v + ca*(m+m)
		}
		dd := dst[L : 2*L]
		dd = dd[:len(r1)]
		for j, v := range r1 {
			dd[j] = v * hi
		}
		cb2 := cb * 2
		d := dst[:L]
		d = d[:len(r0)]
		for j, v := range r0 {
			d[j] = (v + cb2*r1[j]) * lo
		}
		return
	}
	{
		// Odd row 1 (interior), its detail output, then even row 0.
		r1 := x[L : 2*L]
		r0 := x[:L]
		r2 := x[2*L : 3*L]
		r0 = r0[:len(r1)]
		r2 = r2[:len(r1)]
		for j, v := range r1 {
			r1[j] = v + ca*(r0[j]+r2[j])
		}
		dd := dst[na*L : na*L+L]
		dd = dd[:len(r1)]
		for j, v := range r1 {
			dd[j] = v * hi
		}
		cb2 := cb * 2
		d := dst[:L]
		d = d[:len(r1)]
		r0 = x[:L]
		r0 = r0[:len(d)]
		for j, v := range r0 {
			d[j] = (v + cb2*r1[j]) * lo
		}
	}
	i := 2
	for ; i+2 < n; i += 2 {
		b := i * L
		// Odd row i+1 reads the still-original even rows i and i+2 (even
		// rows are never written here — their results go to dst).
		ro := x[b+L : b+2*L]
		re0 := x[b : b+L]
		re2 := x[b+2*L : b+3*L]
		re0 = re0[:len(ro)]
		re2 = re2[:len(ro)]
		for j, v := range ro {
			ro[j] = v + ca*(re0[j]+re2[j])
		}
		dd := dst[(na+i/2)*L : (na+i/2)*L+L]
		dd = dd[:len(ro)]
		for j, v := range ro {
			dd[j] = v * hi
		}
		ri := x[b : b+L]
		rm := x[b-L : b]
		rp := x[b+L : b+2*L]
		d := dst[(i/2)*L : (i/2)*L+L]
		rm = rm[:len(ri)]
		rp = rp[:len(ri)]
		d = d[:len(ri)]
		for j, v := range ri {
			d[j] = (v + cb*(rm[j]+rp[j])) * lo
		}
	}
	if i+1 < n {
		// n even: odd row n-1 reflects right, then even row n-2.
		b := i * L
		ro := x[b+L : b+2*L]
		re := x[b : b+L]
		re = re[:len(ro)]
		for j, v := range ro {
			m := re[j]
			ro[j] = v + ca*(m+m)
		}
		dd := dst[(na+i/2)*L : (na+i/2)*L+L]
		dd = dd[:len(ro)]
		for j, v := range ro {
			dd[j] = v * hi
		}
		ri := x[b : b+L]
		rm := x[b-L : b]
		rp := x[b+L : b+2*L]
		d := dst[(i/2)*L : (i/2)*L+L]
		rm = rm[:len(ri)]
		rp = rp[:len(ri)]
		d = d[:len(ri)]
		for j, v := range ri {
			d[j] = (v + cb*(rm[j]+rp[j])) * lo
		}
	} else {
		// n odd: even row n-1's neighbours both reflect to n-2.
		b := i * L
		ri := x[b : b+L]
		rm := x[b-L : b]
		d := dst[((n-1)/2)*L : ((n-1)/2)*L+L]
		rm = rm[:len(ri)]
		d = d[:len(ri)]
		for j, v := range ri {
			m := rm[j]
			d[j] = (v + cb*(m+m)) * lo
		}
	}
}

// interleaveScaledLiftEvenBlock is interleaveScaledLiftEven per lane:
// the interleave+scale expansion fused with the synthesis ladder's first
// even-parity lifting step. src is read only. Requires n >= 2.
// Bit-identical per lane to interleaving each lane as
// [approx*lo | detail*hi] and then running liftStepBlock(dst, n, L, 0, c).
func interleaveScaledLiftEvenBlock[F num.Float](src, dst []F, n, L int, lo, hi, c F) {
	na := approxLen(n)
	for i := 0; i < n-na; i++ {
		s := src[(na+i)*L : (na+i)*L+L]
		d := dst[(2*i+1)*L : (2*i+1)*L+L]
		s = s[:len(d)]
		for j, v := range s {
			d[j] = v * hi
		}
	}
	{
		c2 := c * 2
		s := src[:L]
		r1 := dst[L : 2*L]
		d := dst[:L]
		r1 = r1[:len(d)]
		s = s[:len(d)]
		for j, v := range s {
			d[j] = v*lo + c2*r1[j]
		}
	}
	i := 2
	for ; i+1 < n; i += 2 {
		b := i * L
		s := src[(i/2)*L : (i/2)*L+L]
		rm := dst[b-L : b]
		rp := dst[b+L : b+2*L]
		d := dst[b : b+L]
		rm = rm[:len(d)]
		rp = rp[:len(d)]
		s = s[:len(d)]
		for j, v := range s {
			d[j] = v*lo + c*(rm[j]+rp[j])
		}
	}
	if i == n-1 {
		b := (n - 1) * L
		s := src[(na-1)*L : (na-1)*L+L]
		rm := dst[b-L : b]
		d := dst[b : b+L]
		rm = rm[:len(d)]
		s = s[:len(d)]
		for j, v := range s {
			m := rm[j]
			d[j] = v*lo + c*(m+m)
		}
	}
}

// forwardLiftBlock runs the analysis ladder for kernel k on the slab x
// (n samples x L lanes), writing [approx | detail] per lane into dst.
// x is clobbered. Mirrors forwardLift exactly.
func forwardLiftBlock[F num.Float](k Kernel, x, dst []F, n, L int) {
	if n == 0 {
		return
	}
	if n == 1 {
		copy(dst[:L], x[:L])
		return
	}
	switch k {
	case CDF97:
		liftPairOddEvenBlock(x, n, L, cdf97Alpha, cdf97Beta)
		liftPairDeinterleaveScaledBlock(x, dst, n, L, cdf97Gamma, cdf97Delta, F(cdf97ScaleLo), F(cdf97ScaleHi))
	case CDF53:
		liftPairDeinterleaveScaledBlock(x, dst, n, L, -0.5, 0.25, F(cdf53ScaleLo), F(cdf53ScaleHi))
	case Haar:
		forwardHaarBlock(x, dst, n, L)
	case Daub4:
		forwardDaub4Block(x, dst, n, L)
	default:
		copy(dst[:n*L], x[:n*L])
	}
}

// inverseLiftBlock is the exact inverse of forwardLiftBlock: src holds
// [approx | detail] per lane, dst receives the reconstructed signals.
// src is not modified; dst is used as scratch. Mirrors inverseLift.
func inverseLiftBlock[F num.Float](k Kernel, src, dst []F, n, L int) {
	if n == 0 {
		return
	}
	if n == 1 {
		copy(dst[:L], src[:L])
		return
	}
	switch k {
	case CDF97:
		interleaveScaledLiftEvenBlock(src, dst, n, L, F(1/cdf97ScaleLo), F(1/cdf97ScaleHi), -cdf97Delta)
		liftPairOddEvenBlock(dst, n, L, -cdf97Gamma, -cdf97Beta)
		liftStepBlock(dst, n, L, 1, -cdf97Alpha)
	case CDF53:
		interleaveScaledLiftEvenBlock(src, dst, n, L, F(1/cdf53ScaleLo), F(1/cdf53ScaleHi), -0.25)
		liftStepBlock(dst, n, L, 1, 0.5)
	case Haar:
		inverseHaarBlock(src, dst, n, L)
	case Daub4:
		inverseDaub4Block(src, dst, n, L)
	default:
		copy(dst[:n*L], src[:n*L])
	}
}

// forwardHaarBlock is forwardHaar per lane, odd-length carry included.
func forwardHaarBlock[F num.Float](x, dst []F, n, L int) {
	na := approxLen(n)
	const s = 0.7071067811865476 // 1/sqrt(2)
	for i := 0; 2*i+1 < n; i++ {
		ra := x[2*i*L : 2*i*L+L]
		rb := x[(2*i+1)*L : (2*i+1)*L+L]
		dlo := dst[i*L : i*L+L]
		dhi := dst[(na+i)*L : (na+i)*L+L]
		rb = rb[:len(ra)]
		dlo = dlo[:len(ra)]
		dhi = dhi[:len(ra)]
		for j, a := range ra {
			b := rb[j]
			dlo[j] = (a + b) * s
			dhi[j] = (a - b) * s
		}
	}
	if n%2 == 1 {
		src := x[(n-1)*L : (n-1)*L+L]
		d := dst[(na-1)*L : (na-1)*L+L]
		src = src[:len(d)]
		for j, v := range src {
			d[j] = v * math.Sqrt2
		}
	}
}

func inverseHaarBlock[F num.Float](src, dst []F, n, L int) {
	na := approxLen(n)
	const s = 0.7071067811865476
	for i := 0; 2*i+1 < n; i++ {
		ra := src[i*L : i*L+L]
		rd := src[(na+i)*L : (na+i)*L+L]
		de := dst[2*i*L : 2*i*L+L]
		do := dst[(2*i+1)*L : (2*i+1)*L+L]
		rd = rd[:len(ra)]
		de = de[:len(ra)]
		do = do[:len(ra)]
		for j, a := range ra {
			d := rd[j]
			de[j] = (a + d) * s
			do[j] = (a - d) * s
		}
	}
	if n%2 == 1 {
		s2 := src[(na-1)*L : (na-1)*L+L]
		d := dst[(n-1)*L : (n-1)*L+L]
		s2 = s2[:len(d)]
		for j, v := range s2 {
			d[j] = v * s
		}
	}
}

// forwardDaub4Block is forwardDaub4 per lane (periodic extension, even n
// required; odd n copies through, matching the scalar kernel).
func forwardDaub4Block[F num.Float](x, dst []F, n, L int) {
	if n%2 != 0 {
		copy(dst[:n*L], x[:n*L])
		return
	}
	na := n / 2
	h := [4]F{daub4H0, daub4H1, daub4H2, daub4H3}
	g := [4]F{h[3], -h[2], h[1], -h[0]}
	for i := 0; i < na; i++ {
		dlo := dst[i*L : i*L+L]
		dhi := dst[(na+i)*L : (na+i)*L+L]
		dhi = dhi[:len(dlo)]
		for j := range dlo {
			dlo[j] = 0
			dhi[j] = 0
		}
		for k := 0; k < 4; k++ {
			r := ((2*i + k) % n) * L
			v := x[r : r+L]
			v = v[:len(dlo)]
			hk, gk := h[k], g[k]
			for j, vj := range v {
				dlo[j] += hk * vj
				dhi[j] += gk * vj
			}
		}
	}
}

func inverseDaub4Block[F num.Float](src, dst []F, n, L int) {
	if n%2 != 0 {
		copy(dst[:n*L], src[:n*L])
		return
	}
	na := n / 2
	h := [4]F{daub4H0, daub4H1, daub4H2, daub4H3}
	g := [4]F{h[3], -h[2], h[1], -h[0]}
	for i := range dst[:n*L] {
		dst[i] = 0
	}
	for i := 0; i < na; i++ {
		rlo := src[i*L : i*L+L]
		rhi := src[(na+i)*L : (na+i)*L+L]
		rhi = rhi[:len(rlo)]
		for k := 0; k < 4; k++ {
			r := ((2*i + k) % n) * L
			d := dst[r : r+L]
			d = d[:len(rlo)]
			hk, gk := h[k], g[k]
			for j := range d {
				d[j] += hk*rlo[j] + gk*rhi[j]
			}
		}
	}
}

// ForwardStepBlockTo applies exactly one forward transform level to L
// independent signals held sample-major in src (sample i, lane j at
// src[i*L+j]), writing each lane's [approx | detail] result into dst:
// bit-identical per lane to ForwardStep on that signal alone. src is
// clobbered as lifting scratch. dst must hold at least n*L floats and
// must not alias src. Slabs with n < 2 samples are left unwritten, so
// callers treat them as pass-through, like the scalar step.
func ForwardStepBlockTo[F num.Float](k Kernel, src, dst []F, n, L int) {
	if n < 2 || L < 1 {
		return
	}
	forwardLiftBlock(k, src, dst, n, L)
}

// InverseStepBlockTo undoes exactly one forward level: src holds
// [approx | detail] per lane and is left unmodified, dst receives the
// reconstructed signals. Bit-identical per lane to InverseStep. dst must
// not alias src; n < 2 slabs are left unwritten.
func InverseStepBlockTo[F num.Float](k Kernel, src, dst []F, n, L int) {
	if n < 2 || L < 1 {
		return
	}
	inverseLiftBlock(k, src, dst, n, L)
}

// ForwardStepBlock is the in-place form of ForwardStepBlockTo: the slab
// is transformed using scratch (>= n*L floats) as the lifting buffer.
func ForwardStepBlock[F num.Float](k Kernel, slab []F, n, L int, scratch []F) {
	if n < 2 || L < 1 {
		return
	}
	copy(scratch[:n*L], slab[:n*L])
	forwardLiftBlock(k, scratch, slab, n, L)
}

// InverseStepBlock undoes exactly one ForwardStepBlock in place, lane
// for lane bit-identical to InverseStep.
func InverseStepBlock[F num.Float](k Kernel, slab []F, n, L int, scratch []F) {
	if n < 2 || L < 1 {
		return
	}
	inverseLiftBlock(k, slab, scratch, n, L)
	copy(slab[:n*L], scratch[:n*L])
}

package wavelet

import (
	"math"
	"testing"
)

// eps32 is float32 machine epsilon (2^-23).
const eps32 = 1.1920928955078125e-07

// TestFloat32MatchesFloat64Oracle1D checks the single-precision ladder
// against the float64 oracle on every kernel and a spread of lengths.
//
// Bound derivation: one lifting step updates a sample with d += a*(s0+s1)
// — two adds and one multiply, each rounding with relative error <= eps.
// A CDF97 level applies four lifting steps plus a scaling pass (CDF53:
// two steps, no scaling), so a sample accumulates at most ~10 roundings
// per level, and the analysis gain bounds coefficient growth by a small
// constant per level. The float32 path therefore stays within
// C*(levels+1)*eps32 of the float64 coefficients, relative to the
// largest magnitude in play; C = 64 leaves slack for the worst-case
// alignment of those roundings.
func TestFloat32MatchesFloat64Oracle1D(t *testing.T) {
	for _, kernel := range []Kernel{CDF97, CDF53} {
		for _, n := range []int{1, 10, 20, 40, 64, 127} {
			sig64 := make([]float64, n)
			sig32 := make([]float32, n)
			maxAbs := 0.0
			for i := range sig64 {
				v := math.Sin(0.37*float64(i)) + 0.25*math.Cos(1.9*float64(i)+0.4)
				sig64[i] = v
				sig32[i] = float32(v)
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			maxL := MaxLevels(kernel, n)
			for levels := 0; levels <= maxL; levels++ {
				w64 := append([]float64(nil), sig64...)
				w32 := append([]float32(nil), sig32...)
				s64 := make([]float64, n)
				s32 := make([]float32, n)
				if err := Transform1D(kernel, w64, levels, s64); err != nil {
					t.Fatalf("%v n=%d levels=%d: f64: %v", kernel, n, levels, err)
				}
				if err := Transform1D(kernel, w32, levels, s32); err != nil {
					t.Fatalf("%v n=%d levels=%d: f32: %v", kernel, n, levels, err)
				}
				coefMax := math.Max(maxAbs, 1)
				for _, c := range w64 {
					if a := math.Abs(c); a > coefMax {
						coefMax = a
					}
				}
				tol := 64 * eps32 * float64(levels+1) * coefMax
				for i := range w64 {
					// The f32 input itself already sits eps32*|v| from the f64
					// signal, which the same bound absorbs.
					if d := math.Abs(float64(w32[i]) - w64[i]); !(d <= tol) {
						t.Fatalf("%v n=%d levels=%d: coeff %d: f32 %g vs f64 %g (|diff| %g > tol %g)",
							kernel, n, levels, i, w32[i], w64[i], d, tol)
					}
				}
			}
		}
	}
}

package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

func TestFilterTapsNormalization(t *testing.T) {
	sum := func(taps []float64) float64 {
		var s float64
		for _, v := range taps {
			s += v
		}
		return s
	}
	alt := func(taps []float64) float64 {
		var s float64
		for i, v := range taps {
			if i%2 == 0 {
				s += v
			} else {
				s -= v
			}
		}
		return s
	}
	for _, k := range []Kernel{CDF97, CDF53} {
		lo, hi := AnalysisFilters(k)
		if math.Abs(sum(lo)-math.Sqrt2) > 1e-12 {
			t.Errorf("%v: lowpass DC gain %g, want sqrt(2)", k, sum(lo))
		}
		if math.Abs(sum(hi)) > 1e-12 {
			t.Errorf("%v: highpass DC gain %g, want 0 (vanishing moment)", k, sum(hi))
		}
		// Highpass must respond at Nyquist.
		if math.Abs(alt(hi)) < 0.5 {
			t.Errorf("%v: highpass Nyquist gain %g suspiciously small", k, alt(hi))
		}
	}
	if lo, hi := AnalysisFilters(Haar); lo != nil || hi != nil {
		t.Error("Haar has no convolution form here")
	}
}

// The lifting implementation must compute exactly the same transform as
// direct convolution with symmetric extension, for even and odd lengths.
func TestLiftingMatchesConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []Kernel{CDF97, CDF53} {
		for _, n := range []int{2, 3, 8, 9, 16, 17, 33, 64, 101} {
			src := randSignal(rng, n)
			viaLift := append([]float64(nil), src...)
			scratch := make([]float64, n)
			ForwardStep(k, viaLift, scratch)

			viaConv := make([]float64, n)
			if !ConvolveStep(k, src, viaConv) {
				t.Fatalf("%v: ConvolveStep refused", k)
			}
			for i := range viaConv {
				if d := math.Abs(viaLift[i] - viaConv[i]); d > 1e-10 {
					t.Fatalf("%v n=%d: lifting and convolution disagree at %d: %.12g vs %.12g (diff %.3g)",
						k, n, i, viaLift[i], viaConv[i], d)
				}
			}
		}
	}
}

func TestConvolveStepTinyInput(t *testing.T) {
	src := []float64{5}
	dst := make([]float64, 1)
	if !ConvolveStep(CDF97, src, dst) {
		t.Fatal("refused single sample")
	}
	if dst[0] != 5 {
		t.Errorf("single sample changed to %g", dst[0])
	}
	if ConvolveStep(Haar, src, dst) {
		t.Error("Haar should report no convolution form")
	}
}

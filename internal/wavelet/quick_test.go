package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: forward followed by inverse is the identity (within floating
// point tolerance) for arbitrary signals, lengths, and level counts.
func TestQuickPerfectReconstruction(t *testing.T) {
	for _, k := range symmetricKernels() {
		k := k
		prop := func(seed int64, nRaw uint16, lvlRaw uint8) bool {
			n := int(nRaw)%200 + 2
			rng := rand.New(rand.NewSource(seed))
			orig := randSignal(rng, n)
			max := MaxLevels(k, n)
			levels := 0
			if max > 0 {
				levels = int(lvlRaw) % (max + 1)
			}
			data := append([]float64(nil), orig...)
			if err := Transform1D(k, data, levels, nil); err != nil {
				return false
			}
			if err := Inverse1D(k, data, levels, nil); err != nil {
				return false
			}
			return maxAbsDiff(orig, data) < 1e-8
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// Property: the transform is linear — T(a*x + b*y) == a*T(x) + b*T(y).
func TestQuickLinearity(t *testing.T) {
	for _, k := range symmetricKernels() {
		k := k
		prop := func(seed int64, aRaw, bRaw int8) bool {
			a, b := float64(aRaw)/16, float64(bRaw)/16
			rng := rand.New(rand.NewSource(seed))
			n := 48
			x := randSignal(rng, n)
			y := randSignal(rng, n)
			levels := MaxLevels(k, n)

			combo := make([]float64, n)
			for i := range combo {
				combo[i] = a*x[i] + b*y[i]
			}
			if err := Transform1D(k, combo, levels, nil); err != nil {
				return false
			}
			if err := Transform1D(k, x, levels, nil); err != nil {
				return false
			}
			if err := Transform1D(k, y, levels, nil); err != nil {
				return false
			}
			for i := range combo {
				if math.Abs(combo[i]-(a*x[i]+b*y[i])) > 1e-8 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// Property: MaxLevels is monotone non-decreasing in signal length.
func TestQuickMaxLevelsMonotone(t *testing.T) {
	prop := func(nRaw uint16) bool {
		n := int(nRaw) % 4096
		for _, k := range []Kernel{CDF97, CDF53, Haar} {
			if MaxLevels(k, n) > MaxLevels(k, n+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: reflect always lands in range and is the identity inside range.
func TestQuickReflectInRange(t *testing.T) {
	prop := func(iRaw int16, nRaw uint8) bool {
		n := int(nRaw)%64 + 2
		i := int(iRaw) % (3 * n)
		r := reflect(i, n)
		if r < 0 || r >= n {
			return false
		}
		if i >= 0 && i < n && r != i {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: zeroing detail coefficients of a transformed constant signal and
// inverting reproduces the constant exactly (idempotence of smooth
// reconstruction).
func TestQuickConstantRoundTripWithThreshold(t *testing.T) {
	for _, k := range symmetricKernels() {
		k := k
		prop := func(cRaw int16, nRaw uint8) bool {
			c := float64(cRaw) / 8
			n := int(nRaw)%100 + 16
			levels := MaxLevels(k, n)
			data := make([]float64, n)
			for i := range data {
				data[i] = c
			}
			if err := Transform1D(k, data, levels, nil); err != nil {
				return false
			}
			na := ApproxLenAfter(n, levels)
			for i := na; i < n; i++ {
				data[i] = 0 // discard all details
			}
			if err := Inverse1D(k, data, levels, nil); err != nil {
				return false
			}
			for _, v := range data {
				if math.Abs(v-c) > 1e-8*(1+math.Abs(c)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

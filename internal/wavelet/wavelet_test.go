package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	return x
}

func symmetricKernels() []Kernel { return []Kernel{CDF97, CDF53, Haar} }
func allKernels() []Kernel       { return []Kernel{CDF97, CDF53, Haar, Daub4} }

func TestKernelString(t *testing.T) {
	cases := map[Kernel]string{
		CDF97:      "CDF 9/7",
		CDF53:      "CDF 5/3",
		Haar:       "Haar",
		Daub4:      "Daub4",
		Kernel(99): "Kernel(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kernel(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKernelFilterSize(t *testing.T) {
	cases := map[Kernel]int{CDF97: 9, CDF53: 5, Haar: 2, Daub4: 4, Kernel(99): 0}
	for k, want := range cases {
		if got := k.FilterSize(); got != want {
			t.Errorf("%v.FilterSize() = %d, want %d", k, got, want)
		}
	}
}

func TestParseKernel(t *testing.T) {
	good := map[string]Kernel{
		"cdf97": CDF97, "CDF 9/7": CDF97, "cdf9/7": CDF97, "CDF-9-7": CDF97,
		"cdf53": CDF53, "CDF 5/3": CDF53,
		"haar": Haar, "Haar": Haar,
		"daub4": Daub4, "db2": Daub4,
	}
	for s, want := range good {
		got, err := ParseKernel(s)
		if err != nil {
			t.Errorf("ParseKernel(%q): unexpected error %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseKernel(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "cdf", "bior22", "cdf 9/11"} {
		if _, err := ParseKernel(s); err == nil {
			t.Errorf("ParseKernel(%q): expected error", s)
		}
	}
}

func TestReflect(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{-1, 8, 1}, {-2, 8, 2}, {8, 8, 6}, {9, 8, 5},
		{0, 8, 0}, {7, 8, 7}, {-1, 2, 1}, {2, 2, 0},
		{-3, 3, 1}, {5, 3, 1},
	}
	for _, c := range cases {
		if got := reflect(c.i, c.n); got != c.want {
			t.Errorf("reflect(%d, %d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestReflectPreservesParityAtBoundary(t *testing.T) {
	for n := 2; n <= 9; n++ {
		if got := reflect(-1, n); got%2 != 1 {
			t.Errorf("reflect(-1,%d)=%d not odd-parity", n, got)
		}
		if got := reflect(n, n); got%2 != n%2 {
			t.Errorf("reflect(%d,%d)=%d wrong parity", n, n, got)
		}
	}
}

// Perfect reconstruction for a single level, every kernel, many lengths.
func TestPerfectReconstructionSingleLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range allKernels() {
		for n := 1; n <= 64; n++ {
			if k == Daub4 && n%2 != 0 {
				continue
			}
			orig := randSignal(rng, n)
			data := append([]float64(nil), orig...)
			lvl := 1
			if MaxLevels(k, n) < 1 {
				lvl = 0
			}
			if err := Transform1D(k, data, lvl, nil); err != nil {
				t.Fatalf("%v n=%d: forward: %v", k, n, err)
			}
			if err := Inverse1D(k, data, lvl, nil); err != nil {
				t.Fatalf("%v n=%d: inverse: %v", k, n, err)
			}
			if d := maxAbsDiff(orig, data); d > 1e-9 {
				t.Errorf("%v n=%d: reconstruction error %.3g", k, n, d)
			}
		}
	}
}

// Perfect reconstruction at maximum level count for odd and even lengths.
func TestPerfectReconstructionMaxLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range symmetricKernels() {
		for _, n := range []int{10, 18, 20, 31, 40, 63, 64, 100, 128, 129} {
			levels := MaxLevels(k, n)
			orig := randSignal(rng, n)
			data := append([]float64(nil), orig...)
			if err := Transform1D(k, data, levels, nil); err != nil {
				t.Fatalf("%v n=%d levels=%d: %v", k, n, levels, err)
			}
			if err := Inverse1D(k, data, levels, nil); err != nil {
				t.Fatalf("%v n=%d levels=%d inverse: %v", k, n, levels, err)
			}
			if d := maxAbsDiff(orig, data); d > 1e-8 {
				t.Errorf("%v n=%d levels=%d: reconstruction error %.3g", k, n, levels, d)
			}
		}
	}
}

// A constant signal must produce zero detail coefficients (one vanishing
// moment) and approximation coefficients scaled by sqrt(2) per level.
func TestConstantSignalCompacts(t *testing.T) {
	for _, k := range symmetricKernels() {
		n := 64
		data := make([]float64, n)
		for i := range data {
			data[i] = 3.5
		}
		if err := Transform1D(k, data, 1, nil); err != nil {
			t.Fatal(err)
		}
		na := approxLen(n)
		for i := na; i < n; i++ {
			if math.Abs(data[i]) > 1e-10 {
				t.Errorf("%v: detail[%d] = %g, want 0", k, i-na, data[i])
			}
		}
		want := 3.5 * math.Sqrt2
		for i := 2; i < na-2; i++ { // skip boundary-affected samples
			if math.Abs(data[i]-want) > 1e-9 {
				t.Errorf("%v: approx[%d] = %g, want %g (DC gain sqrt2)", k, i, data[i], want)
			}
		}
	}
}

// CDF kernels annihilate linear ramps in the detail band (two vanishing
// moments for the analysis highpass of both 5/3 and 9/7) away from
// boundaries.
func TestLinearRampDetailVanishes(t *testing.T) {
	for _, k := range []Kernel{CDF97, CDF53} {
		n := 64
		data := make([]float64, n)
		for i := range data {
			data[i] = 2.0*float64(i) - 7.0
		}
		if err := Transform1D(k, data, 1, nil); err != nil {
			t.Fatal(err)
		}
		na := approxLen(n)
		for i := na + 4; i < n-4; i++ {
			if math.Abs(data[i]) > 1e-8 {
				t.Errorf("%v: interior detail[%d] = %g, want ~0 on a ramp", k, i-na, data[i])
			}
		}
	}
}

// Orthonormal-like normalization: energy is approximately preserved for a
// random smooth signal, and exactly for Haar/Daub4 (orthogonal kernels).
func TestEnergyPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	energy := func(x []float64) float64 {
		var e float64
		for _, v := range x {
			e += v * v
		}
		return e
	}
	for _, k := range allKernels() {
		n := 256
		orig := randSignal(rng, n)
		data := append([]float64(nil), orig...)
		if err := Transform1D(k, data, 3, nil); err != nil {
			t.Fatal(err)
		}
		e0, e1 := energy(orig), energy(data)
		rel := math.Abs(e1-e0) / e0
		tol := 0.25 // biorthogonal kernels are only near-orthogonal
		if k == Haar || k == Daub4 {
			tol = 1e-10
		}
		if rel > tol {
			t.Errorf("%v: energy ratio deviates by %.3g (e0=%g e1=%g)", k, rel, e0, e1)
		}
	}
}

func TestMaxLevelsMatchesPaperTable(t *testing.T) {
	// Section V-A1: windows {10,20,40}: CDF 9/7 -> {1,2,3}, CDF 5/3 -> {2,3,4}.
	cases := []struct {
		k       Kernel
		n, want int
	}{
		{CDF97, 10, 1}, {CDF97, 20, 2}, {CDF97, 40, 3},
		{CDF53, 10, 2}, {CDF53, 20, 3}, {CDF53, 40, 4},
		{CDF97, 512, 6}, {CDF97, 8, 0}, {CDF53, 4, 0},
		{Haar, 2, 1}, {Haar, 16, 4},
		{Daub4, 16, 3}, {Daub4, 15, 0},
	}
	for _, c := range cases {
		if got := MaxLevels(c.k, c.n); got != c.want {
			t.Errorf("MaxLevels(%v, %d) = %d, want %d", c.k, c.n, got, c.want)
		}
	}
}

func TestTransformRejectsTooManyLevels(t *testing.T) {
	data := make([]float64, 10)
	if err := Transform1D(CDF97, data, 2, nil); err == nil {
		t.Error("expected error: 2 levels on length 10 with CDF 9/7")
	}
	if err := Transform1D(CDF97, data, -1, nil); err == nil {
		t.Error("expected error for negative levels")
	}
	if err := Transform1D(Kernel(42), data, 1, nil); err == nil {
		t.Error("expected error for invalid kernel")
	}
}

func TestZeroLevelsIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := randSignal(rng, 33)
	data := append([]float64(nil), orig...)
	if err := Transform1D(CDF97, data, 0, nil); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(orig, data); d != 0 {
		t.Errorf("0-level transform modified data (maxdiff %g)", d)
	}
}

func TestTinySignals(t *testing.T) {
	for _, k := range symmetricKernels() {
		for _, n := range []int{0, 1} {
			data := make([]float64, n)
			if n == 1 {
				data[0] = 42
			}
			if err := Transform1D(k, data, 0, nil); err != nil {
				t.Errorf("%v n=%d: %v", k, n, err)
			}
			if n == 1 && data[0] != 42 {
				t.Errorf("%v: single sample changed to %g", k, data[0])
			}
		}
	}
}

func TestBandLengths(t *testing.T) {
	lens := bandLengths(20, 3)
	want := []int{20, 10, 5}
	if len(lens) != len(want) {
		t.Fatalf("bandLengths(20,3) = %v, want %v", lens, want)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("bandLengths(20,3) = %v, want %v", lens, want)
		}
	}
}

func TestApproxLenAfter(t *testing.T) {
	cases := []struct{ n, levels, want int }{
		{20, 0, 20}, {20, 1, 10}, {20, 2, 5}, {21, 1, 11}, {21, 2, 6},
		{1, 5, 1},
	}
	for _, c := range cases {
		if got := ApproxLenAfter(c.n, c.levels); got != c.want {
			t.Errorf("ApproxLenAfter(%d,%d) = %d, want %d", c.n, c.levels, got, c.want)
		}
	}
}

// Multi-level transform must equal manually iterating single levels on the
// approximation prefix.
func TestMultiLevelEqualsIterated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range symmetricKernels() {
		n := 40
		orig := randSignal(rng, n)

		multi := append([]float64(nil), orig...)
		if err := Transform1D(k, multi, 2, nil); err != nil {
			t.Fatal(err)
		}

		iter := append([]float64(nil), orig...)
		if err := Transform1D(k, iter, 1, nil); err != nil {
			t.Fatal(err)
		}
		if err := Transform1D(k, iter[:approxLen(n)], 1, nil); err != nil {
			t.Fatal(err)
		}

		if d := maxAbsDiff(multi, iter); d > 1e-12 {
			t.Errorf("%v: multi-level differs from iterated by %g", k, d)
		}
	}
}

// Compression sanity: on a smooth signal, CDF 9/7 concentrates energy so the
// largest 25%% of coefficients reconstruct with far lower error than keeping
// 25%% of raw samples would.
func TestCompressionCompactsSmoothSignal(t *testing.T) {
	n := 256
	orig := make([]float64, n)
	for i := range orig {
		x := float64(i) / float64(n)
		orig[i] = math.Sin(2*math.Pi*3*x) + 0.5*math.Cos(2*math.Pi*7*x)
	}
	data := append([]float64(nil), orig...)
	levels := MaxLevels(CDF97, n)
	if err := Transform1D(CDF97, data, levels, nil); err != nil {
		t.Fatal(err)
	}
	// Zero all but the 64 largest-magnitude coefficients.
	type iv struct {
		i int
		v float64
	}
	idx := make([]iv, n)
	for i, v := range data {
		idx[i] = iv{i, math.Abs(v)}
	}
	for i := 0; i < len(idx); i++ { // selection of top-64 by partial sort
		maxJ := i
		for j := i + 1; j < len(idx); j++ {
			if idx[j].v > idx[maxJ].v {
				maxJ = j
			}
		}
		idx[i], idx[maxJ] = idx[maxJ], idx[i]
		if i >= 63 {
			break
		}
	}
	kept := map[int]bool{}
	for i := 0; i < 64; i++ {
		kept[idx[i].i] = true
	}
	for i := range data {
		if !kept[i] {
			data[i] = 0
		}
	}
	if err := Inverse1D(CDF97, data, levels, nil); err != nil {
		t.Fatal(err)
	}
	var rmse float64
	for i := range orig {
		d := orig[i] - data[i]
		rmse += d * d
	}
	rmse = math.Sqrt(rmse / float64(n))
	if rmse > 0.01 {
		t.Errorf("4:1 wavelet compression of smooth signal: RMSE %.4g, want < 0.01", rmse)
	}
}

func BenchmarkTransform1D_CDF97_1024(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	data := randSignal(rng, 1024)
	scratch := make([]float64, 1024)
	levels := MaxLevels(CDF97, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Transform1D(CDF97, data, levels, scratch); err != nil {
			b.Fatal(err)
		}
		if err := Inverse1D(CDF97, data, levels, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

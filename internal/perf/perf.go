// Package perf is the repo's machine-readable benchmark harness: it
// measures pipeline operations with its own calibration loop and emits
// results in a stable JSON schema that CI and EXPERIMENTS.md consumers
// can diff across commits.
//
// The harness deliberately does not use testing.Benchmark: the suite
// runs from a plain binary (stbench perf), where iteration count must be
// controllable (-quick runs every benchmark exactly once for smoke
// coverage) and where results must land in a file, not a text log.
//
// Schema (BENCH_pipeline.json):
//
//	{
//	  "schema": "stwave-bench/v1",
//	  "env": {"cores": ..., "gomaxprocs": ..., "go_version": ...},
//	  "benchmarks": [
//	    {"name": ..., "iters": ..., "ns_per_op": ..., "mb_per_s": ..., "allocs_per_op": ...},
//	    ...
//	  ]
//	}
//
// mb_per_s is 0 for benchmarks without a natural byte volume. The field
// set is append-only: consumers may rely on these five fields existing
// in every entry forever. "env" is a later append-only addition (it
// records the machine the numbers came from, which the worker-scaling
// series is meaningless without); files written before it exist remain
// valid.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// SchemaVersion tags the result file format.
const SchemaVersion = "stwave-bench/v1"

// Result is one benchmark's measurement.
type Result struct {
	// Name identifies the benchmark (stable across releases).
	Name string `json:"name"`
	// Iters is how many times the operation ran in the measured window.
	Iters int64 `json:"iters"`
	// NsPerOp is the mean wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is throughput over the benchmark's declared byte volume
	// (0 when the benchmark declares none).
	MBPerS float64 `json:"mb_per_s"`
	// AllocsPerOp is the mean heap allocation count per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Env records the machine a result file was measured on. Worker-scaling
// results (scaling.*) cannot be interpreted without it.
type Env struct {
	// Cores is runtime.NumCPU at measurement time.
	Cores int `json:"cores"`
	// GoMaxProcs is the effective GOMAXPROCS at measurement time.
	GoMaxProcs int `json:"gomaxprocs"`
	// GoVersion is the toolchain that built the harness.
	GoVersion string `json:"go_version"`
}

// CurrentEnv captures the measurement environment of this process.
func CurrentEnv() Env {
	return Env{
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// File is the top-level document written to BENCH_pipeline.json.
type File struct {
	Schema string `json:"schema"`
	// Env is nil in files written by harness versions that predate it.
	Env        *Env     `json:"env,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Config tunes a suite run.
type Config struct {
	// Quick runs every benchmark exactly once — the make-check smoke
	// mode. Timings are noisy but the schema and the code paths are
	// exercised end to end.
	Quick bool
	// MinTime is the target measurement window per benchmark when not in
	// Quick mode; <= 0 defaults to 200ms.
	MinTime time.Duration
}

// minTime applies the default.
func (c Config) minTime() time.Duration {
	if c.MinTime <= 0 {
		return 200 * time.Millisecond
	}
	return c.MinTime
}

// Measure runs fn until the measurement window is long enough to trust
// (one iteration in Quick mode) and returns the per-op statistics.
// bytesPerOp declares the operation's data volume for MB/s (0 for none).
func Measure(cfg Config, name string, bytesPerOp int64, fn func() error) (Result, error) {
	run := func(n int64) (time.Duration, float64, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := int64(0); i < n; i++ {
			if err := fn(); err != nil {
				return 0, 0, fmt.Errorf("perf: %s: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return elapsed, float64(after.Mallocs-before.Mallocs) / float64(n), nil
	}

	n := int64(1)
	elapsed, allocs, err := run(n)
	if err != nil {
		return Result{}, err
	}
	if !cfg.Quick {
		// Grow the iteration count until the window is long enough,
		// predicting from the last run and bounding growth, the same
		// strategy the testing package uses.
		for elapsed < cfg.minTime() {
			prev := n
			if elapsed > 0 {
				n = int64(float64(prev) * 1.2 * float64(cfg.minTime()) / float64(elapsed))
			}
			if n < prev+1 {
				n = prev + 1
			}
			if n > prev*10 {
				n = prev * 10
			}
			if elapsed, allocs, err = run(n); err != nil {
				return Result{}, err
			}
		}
	}
	r := Result{
		Name:        name,
		Iters:       n,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: allocs,
	}
	if bytesPerOp > 0 && elapsed > 0 {
		mb := float64(bytesPerOp) * float64(n) / (1 << 20)
		r.MBPerS = mb / elapsed.Seconds()
	}
	return r, nil
}

// Write emits the results as an indented schema-tagged JSON document,
// stamped with the current machine's Env.
func Write(w io.Writer, results []Result) error {
	env := CurrentEnv()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(File{Schema: SchemaVersion, Env: &env, Benchmarks: results})
}

// Validate checks that data is a well-formed result file: correct schema
// tag, at least one benchmark, and sane fields in every entry. CI runs
// this over the committed baseline and over fresh smoke runs.
func Validate(data []byte) error {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("perf: result file is not valid JSON: %w", err)
	}
	if f.Schema != SchemaVersion {
		return fmt.Errorf("perf: schema %q, want %q", f.Schema, SchemaVersion)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("perf: result file has no benchmarks")
	}
	seen := make(map[string]bool, len(f.Benchmarks))
	for i, b := range f.Benchmarks {
		switch {
		case b.Name == "":
			return fmt.Errorf("perf: benchmark %d has no name", i)
		case seen[b.Name]:
			return fmt.Errorf("perf: duplicate benchmark %q", b.Name)
		case b.Iters < 1:
			return fmt.Errorf("perf: %s: iters = %d, want >= 1", b.Name, b.Iters)
		case b.NsPerOp <= 0:
			return fmt.Errorf("perf: %s: ns_per_op = %g, want > 0", b.Name, b.NsPerOp)
		case b.MBPerS < 0:
			return fmt.Errorf("perf: %s: mb_per_s = %g, want >= 0", b.Name, b.MBPerS)
		case b.AllocsPerOp < 0:
			return fmt.Errorf("perf: %s: allocs_per_op = %g, want >= 0", b.Name, b.AllocsPerOp)
		}
		seen[b.Name] = true
	}
	return nil
}

package perf

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"stwave/internal/codec"
	"stwave/internal/compress"
	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/ingest"
	"stwave/internal/num"
	"stwave/internal/obs"
	"stwave/internal/server"
	"stwave/internal/sim/synth"
	"stwave/internal/storage"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

// Pipeline workload shape: small enough that -quick finishes in seconds,
// large enough that per-op noise stays in the low percents at the
// default MinTime.
const (
	benchN      = 24 // grid edge (24^3 points per slice)
	benchSlices = 10
	benchWindow = 5
	benchRatio  = 32
	// benchWorkers = 0 measures the shipped default (all CPUs). The
	// scaling.* series pins explicit worker budgets so cross-machine
	// files stay interpretable via the env block.
	benchWorkers = 0
	// Ingest-scaling workload: small enough that the 100-window run
	// stays in the hundreds of milliseconds, long enough that the
	// bounded-memory ledger actually gates admission.
	ingestN      = 16
	ingestWindow = 4
)

// benchGrid builds a temporally coherent window that compresses like
// simulation output (smooth in space, slowly scaling in time).
func benchGrid() *grid.Window {
	d := grid.Dims{Nx: benchN, Ny: benchN, Nz: benchN}
	w := grid.NewWindow(d)
	for t := 0; t < benchSlices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					f.Data[f.Index(x, y, z)] = math.Sin(0.3*float64(x)+0.1*float64(t)) *
						math.Cos(0.2*float64(y)) * math.Sin(0.25*float64(z)+0.05*float64(t))
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err) // dims are static; Append cannot fail
		}
	}
	return w
}

// benchGrid32 is benchGrid narrowed to float32: the same coherent signal,
// half the bytes, for the fast-path comparison rows.
func benchGrid32() *grid.Window32 {
	src := benchGrid()
	w := grid.NewWindow32(src.Dims)
	for i, s := range src.Slices {
		f := grid.NewField3D32(src.Dims.Nx, src.Dims.Ny, src.Dims.Nz)
		num.Convert(f.Data, s.Data)
		if err := w.Append(f, src.Times[i]); err != nil {
			panic(err) // dims are static; Append cannot fail
		}
	}
	return w
}

// pipelineBenchmark is one entry of the standard suite. fn receives a
// context so a traced demonstration run can flow spans through the same
// code path the measurement used.
type pipelineBenchmark struct {
	name       string
	bytesPerOp int64
	fn         func(ctx context.Context) error
}

// RunPipeline measures the standard pipeline suite — transform,
// threshold, encode/decode, container write/read, HTTP serving — and
// returns the results in suite order. When ctx carries an obs trace
// root, each benchmark also runs one traced iteration so the caller can
// dump a span tree of the exact measured code paths. Progress lines go
// to progress when non-nil.
func RunPipeline(ctx context.Context, cfg Config, progress io.Writer) ([]Result, error) {
	w := benchGrid()
	rawBytes := int64(w.TotalSamples()) * 8

	opts := core.DefaultOptions()
	opts.WindowSize = benchWindow
	opts.Ratio = benchRatio
	opts.Workers = benchWorkers
	comp, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	spec := transform.Spec{
		SpatialKernel: wavelet.CDF97, SpatialLevels: -1,
		TemporalKernel: wavelet.CDF97, TemporalLevels: -1,
		Workers: benchWorkers,
	}

	// Fixed inputs for the decode-side benchmarks.
	transformed := w.Clone()
	if err := transform.Forward4D(transformed, spec); err != nil {
		return nil, err
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		return nil, err
	}

	// Fixed thresholded coefficient slices for the codec-level
	// benchmarks, and a compressor pinned to the entropy backend for the
	// end-to-end comparison against core.compress_window.
	datas := make([][]float64, len(transformed.Slices))
	for i, s := range transformed.Slices {
		datas[i] = append([]float64(nil), s.Data...)
		if _, err := compress.ThresholdRatio(datas[i], benchRatio); err != nil {
			return nil, err
		}
	}
	entCodec := codec.Entropy()
	entBlocks, err := entCodec.EncodeSlices(datas, benchWorkers)
	if err != nil {
		return nil, err
	}
	decodeScratch := make([]float64, len(datas[0]))
	entOpts := opts
	entOpts.Codec = entCodec
	entComp, err := core.New(entOpts)
	if err != nil {
		return nil, err
	}

	// Persistent working window for the in-place stages: the timed loop
	// copies the fixed input over it instead of cloning, so the
	// measurement sees the stage's own allocations, not the harness's.
	work := w.Clone()
	copyInto := func(dst, src *grid.Window) {
		for i, s := range src.Slices {
			copy(dst.Slices[i].Data, s.Data)
		}
	}

	// float32 fast-path fixtures: the same coherent window at half the
	// bytes, a working copy for the in-place transform, and a matching
	// container for the cold serving row. Comparing these rows against
	// their f64 twins is the memory-bound speedup claim in benchmark form.
	w32 := benchGrid32()
	rawBytes32 := int64(w32.TotalSamples()) * 4
	work32 := w32.Clone()
	copyInto32 := func(dst, src *grid.Window32) {
		for i, s := range src.Slices {
			copy(dst.Slices[i].Data, s.Data)
		}
	}

	// Progressive fixtures: the same window in the level-major layout,
	// for the partial-decode and coarse-first serving benchmarks.
	progOpts := opts
	progOpts.Progressive = true
	progComp, err := core.New(progOpts)
	if err != nil {
		return nil, err
	}
	progCW, err := progComp.CompressWindow(w)
	if err != nil {
		return nil, err
	}
	coarse := transform.CoarseDims(w.Dims, progCW.SpatialLevels)
	coarseBytes := int64(coarse.Len()) * int64(benchSlices) * 8

	// Container + server fixtures.
	dir, err := os.MkdirTemp("", "stwave-perf-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	contPath := filepath.Join(dir, "bench.stw")
	if err := writeBenchContainer(contPath, comp, w); err != nil {
		return nil, err
	}
	progPath := filepath.Join(dir, "bench-prog.stw")
	if err := writeBenchContainer(progPath, progComp, w); err != nil {
		return nil, err
	}
	path32 := filepath.Join(dir, "bench-f32.stw")
	if err := writeBenchContainer32(path32, opts, w32); err != nil {
		return nil, err
	}
	reader, err := storage.OpenContainer(contPath)
	if err != nil {
		return nil, err
	}
	defer reader.Close()
	encodedBytes, err := reader.WindowSizeBytes(0)
	if err != nil {
		return nil, err
	}

	srv := server.New(server.DefaultConfig())
	if err := srv.Mount("bench", contPath); err != nil {
		return nil, err
	}
	if err := srv.Mount("benchprog", progPath); err != nil {
		return nil, err
	}
	if err := srv.Mount("bench32", path32); err != nil {
		return nil, err
	}
	defer srv.Close()
	handler := srv.Handler()
	serveURL := func(url string) error {
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", url, rec.Code, rec.Body.String())
		}
		return nil
	}
	serveSlice := func(t int) error {
		return serveURL(fmt.Sprintf("/v1/bench/slice?t=%d", t))
	}
	sliceBytes := int64(benchN*benchN*benchN) * 4 // float32 response payload
	coarseSliceBytes := int64(coarse.Len()) * 4

	suite := []pipelineBenchmark{
		{"xform.forward4d_cdf97", rawBytes, func(ctx context.Context) error {
			copyInto(work, w)
			return transform.Forward4DCtx(ctx, work, spec)
		}},
		{"xform.inverse4d_cdf97", rawBytes, func(ctx context.Context) error {
			copyInto(work, transformed)
			return transform.Inverse4DCtx(ctx, work, spec)
		}},
		{"compress.threshold", rawBytes, func(ctx context.Context) error {
			copyInto(work, transformed)
			for _, s := range work.Slices {
				if _, err := compress.ThresholdRatio(s.Data, benchRatio); err != nil {
					return err
				}
			}
			return nil
		}},
		{"core.compress_window", rawBytes, func(ctx context.Context) error {
			_, err := comp.CompressWindowCtx(ctx, w)
			return err
		}},
		{"core.decompress_window", rawBytes, func(ctx context.Context) error {
			_, err := core.DecompressCtx(ctx, cw)
			return err
		}},
		{"core.partial_decode", coarseBytes, func(ctx context.Context) error {
			_, err := core.DecompressLevelsCtx(ctx, progCW, 0)
			return err
		}},
		{"codec.entropy_encode", rawBytes, func(ctx context.Context) error {
			_, err := entCodec.EncodeSlices(datas, benchWorkers)
			return err
		}},
		{"codec.entropy_decode", rawBytes, func(ctx context.Context) error {
			for _, b := range entBlocks {
				if err := b.DecodeInto(decodeScratch, benchWorkers); err != nil {
					return err
				}
			}
			return nil
		}},
		{"core.compress_window_entropy", rawBytes, func(ctx context.Context) error {
			_, err := entComp.CompressWindowCtx(ctx, w)
			return err
		}},
		{"storage.write_container", cw.EncodedSizeBytes(), func(ctx context.Context) error {
			cont, err := storage.CreateContainer(filepath.Join(dir, "write.stw"))
			if err != nil {
				return err
			}
			if _, err := cont.AppendCtx(ctx, cw); err != nil {
				cont.Close() //stlint:ignore uncheckederr the Append error is what matters
				return err
			}
			return cont.Close()
		}},
		{"storage.read_window", encodedBytes, func(ctx context.Context) error {
			_, err := reader.ReadWindowCtx(ctx, 0)
			return err
		}},
		{"server.slice_hot", sliceBytes, func(ctx context.Context) error {
			return serveSlice(2)
		}},
		{"server.slice_cold", sliceBytes, func(ctx context.Context) error {
			srv.Cache().Flush()
			return serveSlice(2)
		}},
		{"server.slice_levelK", coarseSliceBytes, func(ctx context.Context) error {
			// Coarse-first serving end to end: the cache is flushed every
			// iteration so the measurement covers the level-bounded prefix
			// read and partial decode, not a cache hit.
			srv.Cache().Flush()
			return serveURL("/v1/benchprog/slice?t=2&levels=0")
		}},
		// float32 fast-path rows: the same workloads as their f64 twins
		// (xform.forward4d_cdf97, core.compress_window, server.slice_cold)
		// at half the bytes per sample. The memory-bound pipeline should
		// show these well under their f64 counterparts' ns/op.
		{"xform.forward4d_cdf97_f32", rawBytes32, func(ctx context.Context) error {
			copyInto32(work32, w32)
			return transform.Forward4DCtx(ctx, work32, spec)
		}},
		{"core.compress_window_f32", rawBytes32, func(ctx context.Context) error {
			_, err := comp.CompressWindow32Ctx(ctx, w32)
			return err
		}},
		{"server.slice_cold_f32", sliceBytes, func(ctx context.Context) error {
			srv.Cache().Flush()
			return serveURL("/v1/bench32/slice?t=2")
		}},
	}

	// Worker-scaling series: the full compress under pinned worker
	// budgets (1, 2, all CPUs), so a result file documents how the hot
	// path scales on the machine named in its env block.
	for _, sw := range []struct {
		name    string
		workers int
	}{
		{"scaling.compress_window_w1", 1},
		{"scaling.compress_window_w2", 2},
		{"scaling.compress_window_wmax", 0},
	} {
		o := opts
		o.Workers = sw.workers
		scomp, err := core.New(o)
		if err != nil {
			return nil, err
		}
		suite = append(suite, pipelineBenchmark{sw.name, rawBytes, func(ctx context.Context) error {
			_, err := scomp.CompressWindowCtx(ctx, w)
			return err
		}})
	}

	// Entropy-encode scaling pair: the codec stage alone under a pinned
	// single worker and the shipped default, bracketing how the Huffman
	// chunk pipeline scales on this machine.
	for _, sw := range []struct {
		name    string
		workers int
	}{
		{"scaling.entropy_encode_w1", 1},
		{"scaling.entropy_encode_wmax", 0},
	} {
		workers := sw.workers
		suite = append(suite, pipelineBenchmark{sw.name, rawBytes, func(ctx context.Context) error {
			_, err := entCodec.EncodeSlices(datas, workers)
			return err
		}})
	}

	// Streaming-ingest scaling pair: the full in-situ loop — source
	// sampling, window building, pipelined compression, journal append —
	// under a fixed three-window memory budget at two run lengths a
	// decade apart. Flat MB/s between the entries is the bounded-memory
	// property in throughput form: per-window cost must not grow with
	// run length. (The ledger ceiling itself is asserted by the ingest
	// package's bounded-memory test.)
	synthCfg := synth.DefaultConfig()
	synthCfg.Modes = 16 // sampling cost scales with modes; keep the 100-window run sub-second
	synthField, err := synth.NewField(synthCfg)
	if err != nil {
		return nil, err
	}
	ingestDims := grid.Dims{Nx: ingestN, Ny: ingestN, Nz: ingestN}
	ingestOpts := core.DefaultOptions()
	ingestOpts.WindowSize = ingestWindow
	ingestOpts.Ratio = benchRatio
	ingestBudget := 3 * ingestWindow * int64(ingestDims.Len()) * 8
	for _, sw := range []struct {
		name    string
		windows int
	}{
		{"scaling.ingest_10w", 10},
		{"scaling.ingest_100w", 100},
	} {
		slices := sw.windows * ingestWindow
		ingestBytes := int64(slices) * int64(ingestDims.Len()) * 8
		ingestPath := filepath.Join(dir, "ingest.stw")
		suite = append(suite, pipelineBenchmark{sw.name, ingestBytes, func(ctx context.Context) error {
			src, err := ingest.NewSynthSource(synthField, ingestDims, 1)
			if err != nil {
				return err
			}
			cont, err := storage.CreateContainer(ingestPath)
			if err != nil {
				return err
			}
			eng, err := ingest.NewEngine(ingest.Config{
				Opts: ingestOpts, Workers: 2,
				MemBudget: ingestBudget, Policy: ingest.PolicyStall,
			}, ingestDims, cont)
			if err != nil {
				cont.Close() //stlint:ignore uncheckederr the construction error is what matters
				return err
			}
			if _, err := eng.Run(src, slices); err != nil {
				cont.Close() //stlint:ignore uncheckederr the run error is what matters
				return err
			}
			return cont.Close()
		}})
	}

	// Warm the server cache so slice_hot measures the steady state.
	if err := serveSlice(2); err != nil {
		return nil, err
	}

	results := make([]Result, 0, len(suite))
	for _, b := range suite {
		r, err := Measure(cfg, b.name, b.bytesPerOp, func() error {
			return b.fn(context.Background())
		})
		if err != nil {
			return nil, err
		}
		if obs.FromContext(ctx) != nil {
			// One extra traced iteration per benchmark: spans flow through
			// the exact code the measurement loop just ran.
			bctx, sp := obs.Start(ctx, "perf."+b.name)
			if err := b.fn(bctx); err != nil {
				sp.End()
				return nil, err
			}
			sp.End()
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-28s %10d iters  %14.0f ns/op  %10.2f MB/s  %8.1f allocs/op\n",
				r.Name, r.Iters, r.NsPerOp, r.MBPerS, r.AllocsPerOp)
		}
		results = append(results, r)
	}
	return results, nil
}

// writeBenchContainer32 streams the float32 bench window into a fresh
// container via the native single-precision writer.
func writeBenchContainer32(path string, opts core.Options, w *grid.Window32) error {
	cont, err := storage.CreateContainer(path)
	if err != nil {
		return err
	}
	o := opts
	o.Precision = core.Float32
	writer, err := core.NewWriter32(o, w.Dims, func(cw *core.CompressedWindow) error {
		_, err := cont.Append(cw)
		return err
	})
	if err != nil {
		cont.Close() //stlint:ignore uncheckederr the construction error is what matters
		return err
	}
	for i, s := range w.Slices {
		if err := writer.WriteSlice(s, float64(i)); err != nil {
			cont.Close() //stlint:ignore uncheckederr the write error is what matters
			return err
		}
	}
	if err := writer.Flush(); err != nil {
		cont.Close() //stlint:ignore uncheckederr the flush error is what matters
		return err
	}
	return cont.Close()
}

// writeBenchContainer streams the bench window into a fresh container.
func writeBenchContainer(path string, comp *core.Compressor, w *grid.Window) error {
	cont, err := storage.CreateContainer(path)
	if err != nil {
		return err
	}
	writer, err := core.NewWriter(comp.Options(), w.Dims, func(cw *core.CompressedWindow) error {
		_, err := cont.Append(cw)
		return err
	})
	if err != nil {
		cont.Close() //stlint:ignore uncheckederr the construction error is what matters
		return err
	}
	for i, s := range w.Slices {
		if err := writer.WriteSlice(s, float64(i)); err != nil {
			cont.Close() //stlint:ignore uncheckederr the write error is what matters
			return err
		}
	}
	if err := writer.Flush(); err != nil {
		cont.Close() //stlint:ignore uncheckederr the flush error is what matters
		return err
	}
	return cont.Close()
}

package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Benchmark comparison: the regression gate behind `stbench compare` and
// `make bench-diff`. A fresh suite run is diffed against a committed
// baseline file; any benchmark whose ns/op grew by more than the allowed
// fraction fails the gate. Benchmarks present on only one side are
// reported but never fail — the schema grows append-only, so a new
// harness version comparing against an older baseline is normal.

// Delta is one benchmark's baseline/current pair.
type Delta struct {
	Name              string
	Baseline, Current Result
}

// NsChange returns the fractional change in ns/op (positive = slower).
func (d Delta) NsChange() float64 {
	return (d.Current.NsPerOp - d.Baseline.NsPerOp) / d.Baseline.NsPerOp
}

// Comparison is the result of diffing two benchmark files.
type Comparison struct {
	// Deltas covers benchmarks present in both files, in current-file
	// order.
	Deltas []Delta
	// OnlyBaseline and OnlyCurrent list benchmarks missing from the
	// other side, sorted by name.
	OnlyBaseline []string
	OnlyCurrent  []string
}

// ParseFile validates data against the stwave-bench/v1 schema and
// returns the parsed document.
func ParseFile(data []byte) (File, error) {
	if err := Validate(data); err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, err
	}
	return f, nil
}

// Compare pairs up benchmarks by name.
func Compare(baseline, current File) Comparison {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	cur := make(map[string]bool, len(current.Benchmarks))
	var c Comparison
	for _, b := range current.Benchmarks {
		cur[b.Name] = true
		if old, ok := base[b.Name]; ok {
			c.Deltas = append(c.Deltas, Delta{Name: b.Name, Baseline: old, Current: b})
		} else {
			c.OnlyCurrent = append(c.OnlyCurrent, b.Name)
		}
	}
	for _, b := range baseline.Benchmarks {
		if !cur[b.Name] {
			c.OnlyBaseline = append(c.OnlyBaseline, b.Name)
		}
	}
	sort.Strings(c.OnlyBaseline)
	sort.Strings(c.OnlyCurrent)
	return c
}

// Regressions returns the deltas whose ns/op grew by more than
// maxRegress (a fraction: 0.10 allows up to +10%).
func (c Comparison) Regressions(maxRegress float64) []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.NsChange() > maxRegress {
			out = append(out, d)
		}
	}
	return out
}

// WriteTable renders the side-by-side delta table.
func (c Comparison) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-32s %14s %14s %8s %10s %10s\n",
		"benchmark", "base ns/op", "new ns/op", "Δns/op", "base MB/s", "new MB/s")
	for _, d := range c.Deltas {
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+7.1f%% %10.2f %10.2f\n",
			d.Name, d.Baseline.NsPerOp, d.Current.NsPerOp, d.NsChange()*100,
			d.Baseline.MBPerS, d.Current.MBPerS)
	}
	for _, name := range c.OnlyCurrent {
		fmt.Fprintf(w, "%-32s (new benchmark, no baseline)\n", name)
	}
	for _, name := range c.OnlyBaseline {
		fmt.Fprintf(w, "%-32s (in baseline only, skipped)\n", name)
	}
}

// MergeBest folds a fresh measurement pass into an accumulator, keeping
// each benchmark's fastest (lowest ns/op) result across passes. prev may
// be nil (first pass); order follows the pass that introduced each
// benchmark. Used by the regression gate: transient neighbour load only
// slows a run down, so min-over-passes is the robust estimate.
func MergeBest(prev, pass []Result) []Result {
	if prev == nil {
		return append([]Result(nil), pass...)
	}
	idx := make(map[string]int, len(prev))
	for i, r := range prev {
		idx[r.Name] = i
	}
	for _, r := range pass {
		if i, ok := idx[r.Name]; ok {
			if r.NsPerOp < prev[i].NsPerOp {
				prev[i] = r
			}
		} else {
			prev = append(prev, r)
		}
	}
	return prev
}

// ParseMaxRegress parses a regression bound given as either a percent
// ("10%") or a fraction ("0.10"). The bound must be non-negative.
func ParseMaxRegress(s string) (float64, error) {
	text := strings.TrimSpace(s)
	pct := strings.HasSuffix(text, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(text, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("perf: bad regression bound %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("perf: regression bound %q is negative", s)
	}
	return v, nil
}

package perf

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"stwave/internal/obs"
)

func TestMeasureQuickRunsOnce(t *testing.T) {
	calls := 0
	r, err := Measure(Config{Quick: true}, "demo", 1<<20, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || r.Iters != 1 {
		t.Errorf("calls = %d, iters = %d, want 1 and 1", calls, r.Iters)
	}
	if r.Name != "demo" || r.NsPerOp <= 0 || r.MBPerS <= 0 {
		t.Errorf("result = %+v", r)
	}
}

func TestMeasurePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Measure(Config{Quick: true}, "bad", 0, func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestWriteAndValidateRoundTrip(t *testing.T) {
	results := []Result{
		{Name: "a", Iters: 3, NsPerOp: 100, MBPerS: 5, AllocsPerOp: 2},
		{Name: "b", Iters: 1, NsPerOp: 1e6, MBPerS: 0, AllocsPerOp: 0},
	}
	var buf bytes.Buffer
	if err := Write(&buf, results); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
}

func TestValidateRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"wrong schema":    `{"schema":"other/v9","benchmarks":[{"name":"a","iters":1,"ns_per_op":1}]}`,
		"empty suite":     `{"schema":"stwave-bench/v1","benchmarks":[]}`,
		"missing name":    `{"schema":"stwave-bench/v1","benchmarks":[{"iters":1,"ns_per_op":1}]}`,
		"zero iters":      `{"schema":"stwave-bench/v1","benchmarks":[{"name":"a","ns_per_op":1}]}`,
		"zero ns_per_op":  `{"schema":"stwave-bench/v1","benchmarks":[{"name":"a","iters":1}]}`,
		"duplicate names": `{"schema":"stwave-bench/v1","benchmarks":[{"name":"a","iters":1,"ns_per_op":1},{"name":"a","iters":1,"ns_per_op":1}]}`,
	}
	for what, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: accepted", what)
		}
	}
}

// TestPipelineQuick smoke-runs the whole suite at one iteration per
// benchmark and checks the emitted file validates and covers the
// pipeline layers the acceptance criteria name.
func TestPipelineQuick(t *testing.T) {
	results, err := RunPipeline(context.Background(), Config{Quick: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 6 {
		t.Fatalf("suite has %d benchmarks, want >= 6", len(results))
	}
	var buf bytes.Buffer
	if err := Write(&buf, results); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Errorf("suite output does not validate: %v", err)
	}
	var f File
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	for _, layer := range []string{"xform.", "compress.", "core.", "storage.", "server."} {
		found := false
		for _, b := range f.Benchmarks {
			if strings.HasPrefix(b.Name, layer) {
				found = true
			}
		}
		if !found {
			t.Errorf("no benchmark for layer %q", layer)
		}
	}
}

// TestPipelineTraced checks the traced demonstration iterations attach
// one span per benchmark under the caller's root.
func TestPipelineTraced(t *testing.T) {
	ctx, root := obs.StartRoot(context.Background(), "perf.pipeline")
	results, err := RunPipeline(ctx, Config{Quick: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	tree := root.Tree()
	if len(tree.Children) != len(results) {
		t.Fatalf("root has %d children, want %d", len(tree.Children), len(results))
	}
	// The compress benchmark's traced run must show its stage spans.
	for _, c := range tree.Children {
		if c.Name == "perf.core.compress_window" && len(c.Children) == 0 {
			t.Errorf("traced compress_window has no child spans")
		}
	}
}

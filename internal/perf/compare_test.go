package perf

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestParseMaxRegress(t *testing.T) {
	good := map[string]float64{
		"10%":   0.10,
		"0.10":  0.10,
		" 25% ": 0.25,
		"0":     0,
	}
	for in, want := range good {
		got, err := ParseMaxRegress(in)
		if err != nil {
			t.Errorf("ParseMaxRegress(%q): %v", in, err)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("ParseMaxRegress(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"", "abc", "-5%", "-0.1", "%"} {
		if _, err := ParseMaxRegress(in); err == nil {
			t.Errorf("ParseMaxRegress(%q): accepted", in)
		}
	}
}

func TestCompareAndRegressions(t *testing.T) {
	baseline := File{Benchmarks: []Result{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 50},
	}}
	current := File{Benchmarks: []Result{
		{Name: "a", NsPerOp: 105}, // +5%: inside a 10% bound
		{Name: "b", NsPerOp: 120}, // +20%: regression
		{Name: "new", NsPerOp: 10},
	}}
	c := Compare(baseline, current)
	if len(c.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(c.Deltas))
	}
	if c.Deltas[0].Name != "a" || c.Deltas[1].Name != "b" {
		t.Errorf("delta order = %v, want current-file order a, b", c.Deltas)
	}
	if len(c.OnlyBaseline) != 1 || c.OnlyBaseline[0] != "gone" {
		t.Errorf("only-baseline = %v, want [gone]", c.OnlyBaseline)
	}
	if len(c.OnlyCurrent) != 1 || c.OnlyCurrent[0] != "new" {
		t.Errorf("only-current = %v, want [new]", c.OnlyCurrent)
	}

	reg := c.Regressions(0.10)
	if len(reg) != 1 || reg[0].Name != "b" {
		t.Fatalf("regressions at 10%% = %v, want just b", reg)
	}
	if got := reg[0].NsChange(); math.Abs(got-0.20) > 1e-12 {
		t.Errorf("NsChange = %v, want 0.20", got)
	}
	if reg := c.Regressions(0.25); len(reg) != 0 {
		t.Errorf("regressions at 25%% = %v, want none", reg)
	}

	var buf bytes.Buffer
	c.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"benchmark", "a", "b", "new benchmark", "baseline only"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestMergeBest(t *testing.T) {
	p1 := MergeBest(nil, []Result{{Name: "a", NsPerOp: 100}, {Name: "b", NsPerOp: 50}})
	p2 := MergeBest(p1, []Result{{Name: "a", NsPerOp: 90}, {Name: "b", NsPerOp: 60}, {Name: "c", NsPerOp: 1}})
	if len(p2) != 3 {
		t.Fatalf("merged = %v, want 3 entries", p2)
	}
	want := map[string]float64{"a": 90, "b": 50, "c": 1}
	for _, r := range p2 {
		if math.Float64bits(r.NsPerOp) != math.Float64bits(want[r.Name]) {
			t.Errorf("%s: ns/op = %v, want %v", r.Name, r.NsPerOp, want[r.Name])
		}
	}
}

func TestParseFileAcceptsWriteOutputWithEnv(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Result{{Name: "a", Iters: 1, NsPerOp: 1}}); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.Env == nil || f.Env.Cores <= 0 || f.Env.GoMaxProcs <= 0 || f.Env.GoVersion == "" {
		t.Errorf("env not stamped: %+v", f.Env)
	}
	// A baseline without the optional env block still parses: the schema
	// grows append-only.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "env")
	old, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(old); err != nil {
		t.Errorf("env-less file rejected: %v", err)
	}
}

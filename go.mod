module stwave

go 1.22

module stwave

go 1.24

# stwave — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race bench reproduce examples check fmt-check clean

all: build vet test check

# Fast correctness gate: static checks, race-detector runs of the
# packages with real concurrency (the HTTP server, the shared container
# reader, the burst buffer, and the fault-injection recovery matrix), and
# a short fuzz smoke of the container index parser.
check: vet fmt-check
	$(GO) test -race ./internal/server ./internal/storage
	$(GO) test -run=NONE -fuzz=FuzzOpenContainer -fuzztime=10s ./internal/storage

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark iteration per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every figure and table of the paper (plus extensions).
reproduce:
	$(GO) run ./cmd/stbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/burstbuffer
	$(GO) run ./examples/progressive
	$(GO) run ./examples/isosurface
	$(GO) run ./examples/pathlines
	$(GO) run ./examples/serve

clean:
	$(GO) clean ./...
	rm -rf stbench-out

# stwave — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race bench reproduce examples check fmt-check lint clean

all: build vet test check

# Fast correctness gate: static checks (vet, gofmt, the stlint analyzer
# suite), race-detector runs of the packages with real concurrency (the
# HTTP server, the shared container reader and fault-injection wrapper,
# the burst buffer, and the entropy/sparse codecs), and short fuzz smokes
# of the container index parser, the 1D wavelet round-trip, and the
# record-frame codec.
check: vet fmt-check lint
	$(GO) test -race ./internal/server ./internal/storage ./internal/compress ./internal/faultio
	$(GO) test -run=NONE -fuzz=FuzzOpenContainer -fuzztime=10s ./internal/storage
	$(GO) test -run=NONE -fuzz=FuzzWaveletRoundtrip -fuzztime=5s ./internal/wavelet
	$(GO) test -run=NONE -fuzz=FuzzRecordFrame -fuzztime=5s ./internal/core

# Domain-aware static analysis: five analyzers proving the pipeline's
# numeric and I/O invariants (see internal/lint). Zero findings is the
# merge bar; suppress deliberate cases with //stlint:ignore + reason.
lint:
	$(GO) run ./cmd/stlint ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark iteration per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every figure and table of the paper (plus extensions).
reproduce:
	$(GO) run ./cmd/stbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/burstbuffer
	$(GO) run ./examples/progressive
	$(GO) run ./examples/isosurface
	$(GO) run ./examples/pathlines
	$(GO) run ./examples/serve

clean:
	$(GO) clean ./...
	rm -rf stbench-out

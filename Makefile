# stwave — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race bench bench-go bench-smoke bench-diff reproduce examples check fmt-check lint docscheck clean

all: build vet test check

# Fast correctness gate: static checks (vet, gofmt, the stlint analyzer
# suite — which self-lints internal/lint along with everything else),
# race-detector runs of the packages with real concurrency (the
# HTTP server, the shared container reader and fault-injection wrapper,
# the burst buffer, the entropy/sparse codecs, the streaming ingest
# engine with its backpressure policies, the parallel
# transform/threshold stages with their serial-equivalence property
# tests, and the lint suite itself, whose dogfooding test shells out to
# go list and replays every analyzer over the whole module), a
# GOMAXPROCS=1 smoke of the same parallel stages plus the
# ingest engine (worker budgets must degrade to clean sequential
# execution), and short fuzz smokes of the container index parser, the
# 1D wavelet round-trip at both precisions, the record-frame codec, the gap-marker codec,
# the level-offset table parser of the progressive (v4) layout, the
# entropy coder round-trip, and the coefficient codec block decoders.
check: vet fmt-check lint docscheck bench-smoke
	$(GO) test -race ./internal/server ./internal/storage ./internal/compress ./internal/faultio ./internal/transform ./internal/core ./internal/par ./internal/codec ./internal/entropy ./internal/ingest ./internal/lint
	GOMAXPROCS=1 $(GO) test ./internal/par ./internal/transform ./internal/compress ./internal/core ./internal/codec ./internal/entropy ./internal/ingest
	$(GO) test -run=NONE -fuzz=FuzzOpenContainer -fuzztime=10s ./internal/storage
	$(GO) test -run=NONE -fuzz='FuzzWaveletRoundtrip$$' -fuzztime=5s ./internal/wavelet
	$(GO) test -run=NONE -fuzz=FuzzWaveletRoundtrip32 -fuzztime=5s ./internal/wavelet
	$(GO) test -run=NONE -fuzz=FuzzRecordFrame -fuzztime=5s ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzGapMarker -fuzztime=5s ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzLevelTable -fuzztime=5s ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzEntropyRoundtrip -fuzztime=5s ./internal/entropy
	$(GO) test -run=NONE -fuzz=FuzzCodecDecode -fuzztime=5s ./internal/codec

# Domain-aware static analysis: ten analyzers proving the pipeline's
# numeric, I/O, taint, scratch-pool, context, and worker-budget
# invariants plus godoc coverage of the operator-facing API surface
# (see internal/lint). Zero findings is the merge bar; suppress
# deliberate cases with //stlint:ignore + reason, and the driver flags
# any suppression that has gone stale.
lint:
	$(GO) run ./cmd/stlint ./...

# Docs-drift greplint: every flag the operator docs mention must exist in
# its binary (parsed from the cmd/* flag registrations). Undocumented
# flags are listed as warnings, not failures.
docscheck:
	$(GO) run ./cmd/docscheck

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Machine-readable pipeline benchmark suite. Writes BENCH_pipeline.json
# in the stable stwave-bench/v1 schema ({name, iters, ns_per_op,
# mb_per_s, allocs_per_op} per benchmark — see internal/perf).
bench:
	$(GO) run ./cmd/stbench perf -out BENCH_pipeline.json
	$(GO) run ./cmd/stbench perf -validate BENCH_pipeline.json

# Smoke of the perf harness: one iteration per benchmark, schema-validate
# the output, leave no file behind. Part of make check.
bench-smoke:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/stbench perf -quick -q -out $$tmp && \
	$(GO) run ./cmd/stbench perf -validate $$tmp; \
	rc=$$?; rm -f $$tmp; exit $$rc

# Bench-regression gate: re-measure the pipeline suite (best of 3
# passes per benchmark, so transient neighbour load can't trip the gate)
# and fail when any benchmark's ns/op regresses more than 10% against
# the committed baseline. Run `make bench` first to refresh the baseline
# deliberately.
bench-diff:
	$(GO) run ./cmd/stbench compare -baseline BENCH_pipeline.json -max-regress 10%

# One benchmark iteration per paper table/figure plus ablations
# (the testing-package benchmarks; human-readable output).
bench-go:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every figure and table of the paper (plus extensions).
reproduce:
	$(GO) run ./cmd/stbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/burstbuffer
	$(GO) run ./examples/progressive
	$(GO) run ./examples/isosurface
	$(GO) run ./examples/pathlines
	$(GO) run ./examples/serve

clean:
	$(GO) clean ./...
	rm -rf stbench-out

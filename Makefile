# stwave — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race bench reproduce examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark iteration per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every figure and table of the paper (plus extensions).
reproduce:
	$(GO) run ./cmd/stbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/burstbuffer
	$(GO) run ./examples/progressive
	$(GO) run ./examples/isosurface
	$(GO) run ./examples/pathlines

clean:
	$(GO) clean ./...
	rm -rf stbench-out

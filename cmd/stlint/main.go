// Command stlint runs the repository's domain-aware static-analysis
// suite: six analyzers that prove the compression pipeline's numeric and
// I/O invariants — and its documentation bar — at compile time (see
// internal/lint).
//
// Usage:
//
//	stlint [-list] [packages]
//
// With no package patterns, ./... is analyzed. Findings print one per
// line as "file:line: [analyzer] message" and a non-empty report exits
// with status 1, so `go run ./cmd/stlint ./...` slots directly into make
// check and CI. Suppress a deliberate finding with an adjacent
//
//	//stlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// comment; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stwave/internal/lint"
)

func main() {
	listOnly := flag.Bool("list", false, "print the analyzer roster and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the stwave static-analysis suite. Analyzers:\n\n")
		printRoster(flag.CommandLine.Output())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		printRoster(os.Stdout)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stlint: %v\n", err)
		os.Exit(2)
	}

	cfg := lint.DefaultConfig()
	exit := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Findings(cfg) {
			fmt.Println(relativize(cwd, f))
			exit = 1
		}
	}
	os.Exit(exit)
}

// relativize shortens absolute file paths to be relative to the working
// directory, keeping output stable across checkouts.
func relativize(cwd string, f lint.Finding) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		f.Pos.Filename = rel
	}
	return f.String()
}

func printRoster(w io.Writer) {
	for _, a := range lint.All {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(w)
}

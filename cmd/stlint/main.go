// Command stlint runs the repository's domain-aware static-analysis
// suite: ten analyzers that prove the compression pipeline's numeric,
// I/O, taint, scratch-pool, context, and worker-budget invariants — and
// its documentation bar — at compile time (see internal/lint).
//
// Usage:
//
//	stlint [-list] [-json] [packages]
//
// With no package patterns, ./... is analyzed. Findings print one per
// line as "file:line: [analyzer] message" — or, with -json, as a JSON
// array of {file, line, column, analyzer, message} objects — and a
// non-empty report exits with status 1, so `go run ./cmd/stlint ./...`
// slots directly into make check and CI. Suppress a deliberate finding
// with an adjacent
//
//	//stlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// comment; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stwave/internal/lint"
)

func main() {
	listOnly := flag.Bool("list", false, "print the analyzer roster and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stlint [-list] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the stwave static-analysis suite. Analyzers:\n\n")
		printRoster(flag.CommandLine.Output())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		printRoster(os.Stdout)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stlint: %v\n", err)
		os.Exit(2)
	}

	cfg := lint.DefaultConfig()
	var all []lint.Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Findings(cfg) {
			all = append(all, relativize(cwd, f))
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, all); err != nil {
			fmt.Fprintf(os.Stderr, "stlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range all {
			fmt.Println(f.String())
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// relativize shortens absolute file paths to be relative to the working
// directory, keeping output stable across checkouts.
func relativize(cwd string, f lint.Finding) lint.Finding {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		f.Pos.Filename = rel
	}
	return f
}

func printRoster(w io.Writer) {
	for _, a := range lint.All {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(w)
}

// Command stbench regenerates the paper's evaluation: Figures 2a/2b and
// 2c, Figure 3, and Tables I-III, printing rows shaped like the paper's.
//
// Usage:
//
//	stbench [flags] {fig2|fig2c|fig3|table1|table2|table3|progressive|all}
//	stbench perf [-quick] [-out FILE] [-trace FILE]
//	stbench perf -validate FILE
//	stbench compare -baseline FILE [-current FILE] [-max-regress 10%] [-best 3]
//
// Flags scale the workloads; the defaults run the full suite in a few
// minutes on a laptop. Absolute error values differ from the paper's (the
// substrates are simulators at reduced grids); the comparative structure is
// the reproduction target.
//
// The perf subcommand runs the machine-readable pipeline benchmark suite
// (internal/perf) and writes BENCH_pipeline.json; -validate checks an
// existing result file against the schema and exits.
//
// The compare subcommand (with flags) is the bench-regression gate: it
// re-measures the suite -best times keeping each benchmark's fastest pass
// (or reads -current) and fails when any benchmark regresses more than
// -max-regress in ns/op against -baseline. A bare `stbench compare`
// still runs the rate-distortion comparison experiment.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stwave/internal/experiments"
	"stwave/internal/obs"
	"stwave/internal/perf"
)

// runPerf is the "stbench perf" subcommand: measure the pipeline suite,
// write the schema-tagged result file, optionally dump a span-tree trace
// of one iteration per benchmark.
func runPerf(args []string) {
	fs := flag.NewFlagSet("stbench perf", flag.ExitOnError)
	quick := fs.Bool("quick", false, "one iteration per benchmark (smoke mode)")
	minTime := fs.Duration("mintime", 200*time.Millisecond, "measurement window per benchmark")
	out := fs.String("out", "BENCH_pipeline.json", "result file to write")
	tracePath := fs.String("trace", "", "also write a span-tree trace of the suite to this file")
	validate := fs.String("validate", "", "validate an existing result file and exit")
	obsOn := fs.Bool("obs", true, "record pipeline metrics while benchmarking (-obs=false measures the disabled-instrumentation overhead)")
	quiet := fs.Bool("q", false, "suppress progress output")
	fs.Parse(args)
	obs.SetEnabled(*obsOn)

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err == nil {
			err = perf.Validate(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (%s)\n", *validate, perf.SchemaVersion)
		return
	}

	ctx := context.Background()
	var root *obs.Span
	if *tracePath != "" {
		ctx, root = obs.StartRoot(ctx, "perf.pipeline")
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	results, err := perf.RunPipeline(ctx, perf.Config{Quick: *quick, MinTime: *minTime}, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err == nil {
		if err = perf.Write(f, results); err == nil {
			err = f.Close()
		} else {
			f.Close() //stlint:ignore uncheckederr the Write error is what matters
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stbench: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))

	if root != nil {
		root.End()
		data, err := json.MarshalIndent(root.Tree(), "", "  ")
		if err == nil {
			err = os.WriteFile(*tracePath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "stbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *tracePath)
	}
}

// runCompare is the "stbench compare -baseline ..." regression gate.
func runCompare(args []string) {
	fs := flag.NewFlagSet("stbench compare", flag.ExitOnError)
	baselinePath := fs.String("baseline", "BENCH_pipeline.json", "committed baseline result file")
	currentPath := fs.String("current", "", "result file to compare (default: re-measure the suite now)")
	maxRegressArg := fs.String("max-regress", "10%", "maximum tolerated ns/op regression (percent or fraction)")
	minTime := fs.Duration("mintime", 200*time.Millisecond, "measurement window per benchmark when re-measuring")
	best := fs.Int("best", 3, "re-measurement passes; per benchmark, min ns/op across passes is compared")
	quiet := fs.Bool("q", false, "suppress progress output")
	fs.Parse(args)

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
		os.Exit(1)
	}
	maxRegress, err := perf.ParseMaxRegress(*maxRegressArg)
	if err != nil {
		fail(err)
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fail(err)
	}
	baseline, err := perf.ParseFile(data)
	if err != nil {
		fail(fmt.Errorf("baseline %s: %w", *baselinePath, err))
	}

	var current perf.File
	if *currentPath != "" {
		data, err := os.ReadFile(*currentPath)
		if err != nil {
			fail(err)
		}
		if current, err = perf.ParseFile(data); err != nil {
			fail(fmt.Errorf("current %s: %w", *currentPath, err))
		}
	} else {
		progress := os.Stderr
		if *quiet {
			progress = nil
		}
		// Best-of-N: take each benchmark's fastest pass. A shared machine's
		// transient load only ever slows a run down, so the min is the
		// honest estimate and keeps the gate from tripping on noise.
		if *best < 1 {
			*best = 1
		}
		var results []perf.Result
		for pass := 0; pass < *best; pass++ {
			if progress != nil && *best > 1 {
				fmt.Fprintf(progress, "compare: measurement pass %d/%d\n", pass+1, *best)
			}
			r, err := perf.RunPipeline(context.Background(), perf.Config{MinTime: *minTime}, progress)
			if err != nil {
				fail(err)
			}
			results = perf.MergeBest(results, r)
		}
		env := perf.CurrentEnv()
		current = perf.File{Schema: perf.SchemaVersion, Env: &env, Benchmarks: results}
	}

	cmp := perf.Compare(baseline, current)
	cmp.WriteTable(os.Stdout)
	if regs := cmp.Regressions(maxRegress); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "stbench: %d benchmark(s) regressed more than %s vs %s:\n", len(regs), *maxRegressArg, *baselinePath)
		for _, d := range regs {
			fmt.Fprintf(os.Stderr, "  %s: %.0f -> %.0f ns/op (%+.1f%%)\n", d.Name, d.Baseline.NsPerOp, d.Current.NsPerOp, d.NsChange()*100)
		}
		os.Exit(1)
	}
	fmt.Printf("compare: %d benchmarks within %s of %s\n", len(cmp.Deltas), *maxRegressArg, *baselinePath)
}

// benchCompareInvocation reports whether the argument list is the
// regression-gate form of "compare" (flags follow the subcommand) rather
// than the rate-distortion experiment, which never takes trailing flags.
func benchCompareInvocation() bool {
	return len(os.Args) > 2 && os.Args[1] == "compare" && strings.HasPrefix(os.Args[2], "-")
}

func main() {
	// The perf and compare subcommands have their own flag sets; dispatch
	// before the experiment flags parse (flag stops at the first non-flag
	// argument).
	if len(os.Args) > 1 && os.Args[1] == "perf" {
		runPerf(os.Args[2:])
		return
	}
	if benchCompareInvocation() {
		runCompare(os.Args[2:])
		return
	}
	sc := experiments.DefaultScale()
	flag.IntVar(&sc.GhostN, "ghost-n", sc.GhostN, "Ghost solver resolution (power of two)")
	flag.IntVar(&sc.GhostSlices, "ghost-slices", sc.GhostSlices, "Ghost slices at base cadence")
	flag.IntVar(&sc.CloverN, "clover-n", sc.CloverN, "CloverLeaf cells per axis")
	flag.IntVar(&sc.CloverSlices, "clover-slices", sc.CloverSlices, "CloverLeaf slices")
	flag.IntVar(&sc.TornadoNx, "tornado-nx", sc.TornadoNx, "Tornado grid X")
	flag.IntVar(&sc.TornadoNy, "tornado-ny", sc.TornadoNy, "Tornado grid Y")
	flag.IntVar(&sc.TornadoNz, "tornado-nz", sc.TornadoNz, "Tornado grid Z")
	flag.IntVar(&sc.TornadoSlices, "tornado-slices", sc.TornadoSlices, "Tornado slices at 1s cadence")
	flag.IntVar(&sc.Workers, "workers", sc.Workers, "worker goroutines (0 = all CPUs)")
	flag.Float64Var(&sc.PathlineDt, "pathline-dt", sc.PathlineDt, "RK4 step for Table II (paper: 0.01)")
	flag.IntVar(&sc.PathlineSeedsPerRake, "seeds-per-rake", sc.PathlineSeedsPerRake, "particles per rake (paper: 48)")
	quiet := flag.Bool("q", false, "suppress progress output")
	outdir := flag.String("outdir", "stbench-out", "directory for image artifacts (fig4, fig5)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stbench [flags] {fig2|fig2c|fig3|fig4|fig5|table1|table2|table3|compare|ablation|ftle|seam|p3|entropy|progressive|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}

	var run func(string) error
	run = func(what string) error {
		switch what {
		case "fig2":
			r, err := experiments.RunFig2(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "fig2c":
			r, err := experiments.RunFig2c(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "fig3":
			r, err := experiments.RunFig3(sc, nil, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "table1":
			r, err := experiments.RunTable1(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "table2":
			r, err := experiments.RunTable2(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "table3":
			r, err := experiments.RunTable3(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "compare":
			r, err := experiments.RunComparison(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "ablation":
			r, err := experiments.RunAblation(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "ftle":
			r, err := experiments.RunFTLE(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "p3":
			r, err := experiments.RunP3(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "seam":
			r, err := experiments.RunSeamProfile(sc, 20, 32, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "entropy":
			r, err := experiments.RunEntropyStudy(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "progressive":
			r, err := experiments.RunProgressiveStudy(sc, progress)
			if err != nil {
				return err
			}
			r.Write(os.Stdout)
		case "fig4":
			path, g3, g4, err := experiments.RunFig4(sc, *outdir, progress)
			if err != nil {
				return err
			}
			fmt.Printf("Figure 4 analog written to %s\n", path)
			fmt.Printf("mean final-position gap vs original at 128:1 — 3D: %.0f m, 4D: %.0f m\n", g3, g4)
		case "fig5":
			paths, ao, a3, a4, err := experiments.RunFig5(sc, *outdir, progress)
			if err != nil {
				return err
			}
			fmt.Printf("Figure 5 analog written: %v\n", paths)
			fmt.Printf("cloud isosurface areas at 64:1 — orig %.4g, 3D %.4g (%.2f%%), 4D %.4g (%.2f%%)\n",
				ao, a3, (1-a3/ao)*100, a4, (1-a4/ao)*100)
		case "all":
			for _, w := range []string{"fig2", "fig2c", "fig3", "fig4", "fig5", "table1", "table2", "table3", "compare", "ablation", "ftle", "seam", "p3", "entropy", "progressive"} {
				if err := run(w); err != nil {
					return err
				}
				fmt.Println()
			}
		default:
			return fmt.Errorf("unknown experiment %q", what)
		}
		return nil
	}

	for _, what := range flag.Args() {
		if err := run(strings.ToLower(what)); err != nil {
			fmt.Fprintf(os.Stderr, "stbench: %v\n", err)
			os.Exit(1)
		}
	}
}

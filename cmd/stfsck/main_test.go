package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/storage"
)

// buildContainer writes a small v3 container and returns its path.
func buildContainer(t *testing.T, numWindows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fsck.stw")
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	opts := core.DefaultOptions()
	opts.WindowSize = 3
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	for wi := 0; wi < numWindows; wi++ {
		win := grid.NewWindow(d)
		for ts := 0; ts < 3; ts++ {
			f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
			for i := range f.Data {
				f.Data[i] = float64(wi) + float64(i%11)*0.5
			}
			if err := win.Append(f, float64(wi*3+ts)); err != nil {
				t.Fatal(err)
			}
		}
		cw, err := comp.CompressWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(cw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// truncate chops the file at path down to size bytes.
func truncate(t *testing.T, path string, size int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:size], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanContainer(t *testing.T) {
	path := buildContainer(t, 2)
	var out bytes.Buffer
	dirty, err := runVerify([]string{"-in", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Errorf("clean container reported dirty:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "clean") || !strings.Contains(out.String(), "2 ok") {
		t.Errorf("verify output:\n%s", out.String())
	}
}

func TestVerifyRepairTruncated(t *testing.T) {
	path := buildContainer(t, 3)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	truncate(t, path, st.Size()-40) // rip off the footer and part of the index

	var out bytes.Buffer
	dirty, err := runVerify([]string{"-in", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Errorf("truncated container reported clean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "repair") {
		t.Errorf("verify did not point at repair:\n%s", out.String())
	}

	out.Reset()
	if err := runRepair([]string{"-in", path}, &out); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !strings.Contains(out.String(), "rebuilt index over 3 windows") {
		t.Errorf("repair output:\n%s", out.String())
	}

	// Verify is clean afterwards and the container opens.
	out.Reset()
	dirty, err = runVerify([]string{"-in", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Errorf("repaired container still dirty:\n%s", out.String())
	}
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumWindows() != 3 {
		t.Errorf("NumWindows = %d after repair", r.NumWindows())
	}

	// Repair again: nothing to do.
	out.Reset()
	if err := runRepair([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nothing to repair") {
		t.Errorf("second repair output:\n%s", out.String())
	}
}

func TestVerifyCorruptWindow(t *testing.T) {
	path := buildContainer(t, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x01 // somewhere inside a payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	dirty, err := runVerify([]string{"-in", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Errorf("corrupt container reported clean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "corrupt") {
		t.Errorf("verify output does not name the corrupt window:\n%s", out.String())
	}
}

func TestReportJSON(t *testing.T) {
	path := buildContainer(t, 2)
	var out bytes.Buffer
	if err := runReport([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	var rep storage.ScanReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Good != 2 || !rep.FooterOK || len(rep.Frames) != 2 {
		t.Errorf("report = %+v", rep)
	}
	for _, fr := range rep.Frames {
		if fr.StateS != "ok" {
			t.Errorf("frame %d state %q", fr.Index, fr.StateS)
		}
	}
}

func TestMissingArgs(t *testing.T) {
	if _, err := runVerify(nil, &bytes.Buffer{}); err == nil {
		t.Error("verify without -in must fail")
	}
	if err := runRepair(nil, &bytes.Buffer{}); err == nil {
		t.Error("repair without -in must fail")
	}
	if err := runReport([]string{"-in", filepath.Join(t.TempDir(), "missing.stw")}, &bytes.Buffer{}); err == nil {
		t.Error("report on missing file must fail")
	}
}

// Command stfsck checks and repairs stwave container files.
//
// A format-v3 container is a journal of self-delimiting record frames
// followed by a footer index; stfsck scans the journal, verifies every
// frame's checksums, and can rebuild the index of a container that was
// truncated by a crash before Close finished.
//
// Verify a container (exit status 1 if anything is wrong):
//
//	stfsck verify -in data.stw
//
// Rebuild a missing or torn footer index from the journal:
//
//	stfsck repair -in data.stw
//
// Emit a machine-readable scan report:
//
//	stfsck report -in data.stw
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"stwave/internal/storage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	var dirty bool
	switch os.Args[1] {
	case "verify":
		dirty, err = runVerify(os.Args[2:], os.Stdout)
	case "repair":
		err = runRepair(os.Args[2:], os.Stdout)
	case "report":
		err = runReport(os.Args[2:], os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stfsck: %v\n", err)
		os.Exit(2)
	}
	if dirty {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  stfsck verify -in FILE            check journal frames, checksums, and footer; exit 1 on damage
  stfsck repair [-force] -in FILE   rewrite damaged frame headers, or rebuild the footer index
                                    from the record journal (-force allows truncating tail bytes
                                    an unvalidatable footer still claims; the tail is backed up
                                    to FILE.tail.bak first)
  stfsck report -in FILE            print a JSON scan report`)
}

func inFlag(name string, args []string) (string, error) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	in := fs.String("in", "", "container path (required)")
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if *in == "" {
		return "", fmt.Errorf("%s requires -in", name)
	}
	return *in, nil
}

func scan(path string) (*storage.ScanReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return storage.ScanContainer(f, st.Size())
}

// runVerify scans the container and prints a human summary. dirty
// reports whether any damage was found (torn tail, corrupt windows, or a
// footer inconsistent with the journal).
func runVerify(args []string, w io.Writer) (dirty bool, err error) {
	path, err := inFlag("verify", args)
	if err != nil {
		return false, err
	}
	rep, err := scan(path)
	if err != nil {
		return false, err
	}
	format := "v3"
	if rep.Legacy {
		format = "v2 (legacy, no journal)"
	}
	fmt.Fprintf(w, "%s: %d bytes, format %s\n", path, rep.Size, format)
	fmt.Fprintf(w, "  windows: %d ok, %d corrupt%s%s\n", rep.Good, len(rep.Corrupt), codecSummary(rep), precisionSummary(rep))
	for _, fr := range rep.Frames {
		if fr.State != storage.FrameOK {
			codec := fr.Codec
			if codec == "" {
				codec = "unreadable header"
			} else if fr.Precision != "" {
				codec += ", " + fr.Precision
			}
			fmt.Fprintf(w, "  window %d [%d, +%d): %s (codec %s)\n", fr.Index, fr.Offset, fr.Length, fr.State, codec)
		}
	}
	switch {
	case rep.Torn:
		fmt.Fprintf(w, "  torn record at tail (journal ends at byte %d)\n", rep.TailOffset)
	case !rep.FooterOK:
		fmt.Fprintf(w, "  footer index missing or inconsistent with journal (run stfsck repair)\n")
	case len(rep.BadHeaders) > 0:
		fmt.Fprintf(w, "  %d frame header(s) corrupt but payloads intact via footer (run stfsck repair)\n", len(rep.BadHeaders))
	}
	dirty = rep.Torn || !rep.FooterOK || len(rep.Corrupt) > 0 || len(rep.BadHeaders) > 0
	if !dirty {
		fmt.Fprintf(w, "  clean\n")
	}
	return dirty, nil
}

// codecSummary renders the per-codec window counts of a scan, e.g.
// " (codecs: 3 sparse, 2 entropy)". Empty when no window header parsed.
func codecSummary(rep *storage.ScanReport) string {
	counts := map[string]int{}
	var order []string
	for _, fr := range rep.Frames {
		if fr.Codec == "" {
			continue
		}
		if _, seen := counts[fr.Codec]; !seen {
			order = append(order, fr.Codec)
		}
		counts[fr.Codec]++
	}
	if len(order) == 0 {
		return ""
	}
	s := " (codecs:"
	for i, name := range order {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf(" %d %s", counts[name], name)
	}
	return s + ")"
}

// precisionSummary renders the per-precision window counts of a scan,
// e.g. " (precision: 3 f64, 2 f32)". Mixed containers are legal; the
// census makes them visible. Empty when no window header parsed.
func precisionSummary(rep *storage.ScanReport) string {
	counts := map[string]int{}
	var order []string
	for _, fr := range rep.Frames {
		if fr.Precision == "" {
			continue
		}
		if _, seen := counts[fr.Precision]; !seen {
			order = append(order, fr.Precision)
		}
		counts[fr.Precision]++
	}
	if len(order) == 0 {
		return ""
	}
	s := " (precision:"
	for i, name := range order {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf(" %d %s", counts[name], name)
	}
	return s + ")"
}

// runRepair rewrites damaged frame headers or rebuilds the footer index
// from the journal, whichever the scan calls for.
func runRepair(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	in := fs.String("in", "", "container path (required)")
	force := fs.Bool("force", false, "allow truncating tail bytes an unvalidatable footer still claims (tail backed up to FILE.tail.bak)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("repair requires -in")
	}
	path := *in
	rep, err := storage.RecoverContainerOpts(path, storage.RecoverOptions{Force: *force})
	if err != nil {
		return err
	}
	switch {
	case !rep.NeedsRepair():
		fmt.Fprintf(w, "%s: footer consistent with journal, nothing to repair (%d windows, %d corrupt)\n",
			path, rep.Good+len(rep.Corrupt), len(rep.Corrupt))
	case rep.FooterOK:
		fmt.Fprintf(w, "%s: rewrote %d corrupt frame header(s); all %d windows intact (%d corrupt payloads)\n",
			path, len(rep.BadHeaders), rep.Good+len(rep.Corrupt), len(rep.Corrupt))
	default:
		fmt.Fprintf(w, "%s: rebuilt index over %d windows (%d corrupt", path, rep.Good+len(rep.Corrupt), len(rep.Corrupt))
		if rep.Torn {
			fmt.Fprintf(w, ", dropped torn record at tail")
		}
		fmt.Fprintf(w, ")\n")
	}
	return nil
}

// runReport prints the raw scan report as JSON.
func runReport(args []string, w io.Writer) error {
	path, err := inFlag("report", args)
	if err != nil {
		return err
	}
	rep, err := scan(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Command simgen generates time series of raw float32 volumes from the
// built-in simulation substrates, for feeding to stcomp or external tools.
//
//	simgen -sim ghost   -n 32 -slices 40 -var vx        -out data/ghost
//	simgen -sim clover  -n 24 -slices 40 -var energy    -out data/clover
//	simgen -sim tornado -n 36 -slices 40 -var cloud     -out data/tornado
//	simgen -sim synth   -n 64 -slices 40 -var scalar    -out data/synth
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"stwave/internal/grid"
	"stwave/internal/sim/cloverleaf"
	"stwave/internal/sim/ghost"
	"stwave/internal/sim/synth"
	"stwave/internal/sim/tornado"
)

func main() {
	sim := flag.String("sim", "ghost", "ghost, clover, tornado, or synth")
	n := flag.Int("n", 32, "grid resolution per axis")
	slices := flag.Int("slices", 40, "number of time slices")
	every := flag.Int("every", 2, "solver steps between slices (ghost/clover)")
	variable := flag.String("var", "vx", "variable: vx, enstrophy, energy, vz, cloud, pressure, scalar")
	outPrefix := flag.String("out", "slice", "output path prefix")
	seed := flag.Int64("seed", 1, "random seed where applicable")
	flag.Parse()

	if dir := filepath.Dir(*outPrefix); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	gen, dims, err := makeGenerator(*sim, *n, *every, *variable, *seed)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *slices; i++ {
		f, err := gen(i)
		if err != nil {
			fatal(err)
		}
		path := fmt.Sprintf("%s-%04d.raw", *outPrefix, i)
		if err := f.SaveRawFile(path); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d slices of %v (%s/%s) with prefix %s\n", *slices, dims, *sim, *variable, *outPrefix)
}

// makeGenerator returns a closure producing slice i (must be called with
// consecutive i starting at 0) and the grid dims.
func makeGenerator(sim string, n, every int, variable string, seed int64) (func(int) (*grid.Field3D, error), grid.Dims, error) {
	switch sim {
	case "ghost":
		cfg := ghost.DefaultConfig(n)
		cfg.Seed = seed
		s, err := ghost.NewSolver(cfg)
		if err != nil {
			return nil, grid.Dims{}, err
		}
		if variable == "scalar" {
			if err := s.EnableScalar(ghost.ScalarConfig{Kappa: cfg.Nu, MeanGradient: 1}); err != nil {
				return nil, grid.Dims{}, err
			}
		}
		s.Run(50)
		return func(int) (*grid.Field3D, error) {
			var f *grid.Field3D
			switch variable {
			case "vx":
				f = s.VelocityX()
			case "enstrophy":
				f = s.Enstrophy()
			case "scalar":
				f = s.Scalar()
			default:
				return nil, fmt.Errorf("ghost variables: vx, enstrophy, scalar (got %q)", variable)
			}
			s.Run(every)
			return f, nil
		}, grid.Dims{Nx: n, Ny: n, Nz: n}, nil
	case "clover":
		s, err := cloverleaf.NewSolver(cloverleaf.DefaultConfig(n))
		if err != nil {
			return nil, grid.Dims{}, err
		}
		d := grid.Dims{Nx: n, Ny: n, Nz: n}
		if variable == "vx" {
			d = grid.Dims{Nx: n + 1, Ny: n + 1, Nz: n + 1}
		}
		return func(int) (*grid.Field3D, error) {
			var f *grid.Field3D
			switch variable {
			case "vx":
				f = s.VelocityX()
			case "energy":
				f = s.Energy()
			default:
				return nil, fmt.Errorf("clover variables: vx, energy (got %q)", variable)
			}
			s.Run(every)
			return f, nil
		}, d, nil
	case "tornado":
		m, err := tornado.NewModel(tornado.DefaultConfig(n, n, (n*2)/3))
		if err != nil {
			return nil, grid.Dims{}, err
		}
		return func(i int) (*grid.Field3D, error) {
			t := 8502 + float64(i)
			switch variable {
			case "vx":
				return m.VelocityX(t), nil
			case "vz":
				return m.VelocityZ(t), nil
			case "enstrophy":
				return m.Enstrophy(t), nil
			case "cloud":
				return m.CloudMixingRatio(t), nil
			case "pressure":
				return m.PressurePerturbation(t), nil
			}
			return nil, fmt.Errorf("tornado variables: vx, vz, enstrophy, cloud, pressure (got %q)", variable)
		}, grid.Dims{Nx: n, Ny: n, Nz: (n * 2) / 3}, nil
	case "synth":
		cfg := synth.DefaultConfig()
		cfg.Seed = seed
		f, err := synth.NewField(cfg)
		if err != nil {
			return nil, grid.Dims{}, err
		}
		return func(i int) (*grid.Field3D, error) {
			t := float64(i)
			switch variable {
			case "scalar":
				return f.SampleScalar(n, n, n, t), nil
			case "vx":
				return f.SampleVelocityX(n, n, n, t), nil
			}
			return nil, fmt.Errorf("synth variables: scalar, vx (got %q)", variable)
		}, grid.Dims{Nx: n, Ny: n, Nz: n}, nil
	}
	return nil, grid.Dims{}, fmt.Errorf("unknown simulation %q (ghost, clover, tornado, synth)", sim)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "simgen: %v\n", err)
	os.Exit(1)
}

package main

import (
	"testing"

	"stwave/internal/render"
)

func TestParseAxis(t *testing.T) {
	cases := map[string]render.MIPAxis{"x": render.AlongX, "Y": render.AlongY, "z": render.AlongZ}
	for s, want := range cases {
		got, err := parseAxis(s)
		if err != nil {
			t.Fatalf("parseAxis(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("parseAxis(%q) = %d, want %d", s, got, want)
		}
	}
	if _, err := parseAxis("w"); err == nil {
		t.Error("expected error for unknown axis")
	}
}

func TestLoadFieldValidation(t *testing.T) {
	if _, err := loadField("missing.raw", "", 0, 0); err == nil {
		t.Error("raw input without dims must fail")
	}
	if _, err := loadField("missing.raw", "4x4", 0, 0); err == nil {
		t.Error("malformed dims must fail")
	}
	if _, err := loadField("missing.stw", "", 0, 0); err == nil {
		t.Error("missing container must fail")
	}
}

// Command stview renders quick-look images from raw volumes or stwave
// containers: grayscale/false-color slices, maximum-intensity projections,
// and terminal ASCII previews.
//
//	stview -in vol.raw -dims 64x64x64 -z 32 -out slice.pgm
//	stview -in data.stw -window 0 -slice 4 -mip z -out mip.ppm -color
//	stview -in vol.raw -dims 64x64x64 -ascii 72
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/render"
	"stwave/internal/storage"
)

func main() {
	in := flag.String("in", "", "input: .raw volume or .stw container (required)")
	dimsStr := flag.String("dims", "", "dims NXxNYxNZ (required for raw input)")
	windowIdx := flag.Int("window", 0, "window index (container input)")
	sliceIdx := flag.Int("slice", 0, "time slice within the window (container input)")
	z := flag.Int("z", -1, "z plane to slice (-1 = middle)")
	mip := flag.String("mip", "", "render a maximum-intensity projection along x, y, or z instead of a slice")
	out := flag.String("out", "", "output image (.pgm grayscale or .ppm color); empty with -ascii for terminal output")
	color := flag.Bool("color", false, "write false-color PPM instead of grayscale PGM")
	ascii := flag.Int("ascii", 0, "print an ASCII preview of this width to stdout")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "stview: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	field, err := loadField(*in, *dimsStr, *windowIdx, *sliceIdx)
	if err != nil {
		fatal(err)
	}

	var im *render.Image
	if *mip != "" {
		axis, err := parseAxis(*mip)
		if err != nil {
			fatal(err)
		}
		im, err = render.MIP(field, axis)
		if err != nil {
			fatal(err)
		}
	} else {
		k := *z
		if k < 0 {
			k = field.Dims.Nz / 2
		}
		im, err = render.SliceXY(field, k)
		if err != nil {
			fatal(err)
		}
	}

	if *ascii > 0 {
		fmt.Print(im.ASCII(*ascii))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if *color || strings.HasSuffix(*out, ".ppm") {
			err = im.WritePPM(f)
		} else {
			err = im.WritePGM(f)
		}
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%dx%d)\n", *out, im.W, im.H)
	}
	if *ascii == 0 && *out == "" {
		fatal(fmt.Errorf("nothing to do: pass -out and/or -ascii"))
	}
}

func loadField(path, dimsStr string, windowIdx, sliceIdx int) (*grid.Field3D, error) {
	if strings.HasSuffix(path, ".stw") {
		r, err := storage.OpenContainer(path)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		cw, err := r.ReadWindow(windowIdx)
		if err != nil {
			return nil, err
		}
		return core.DecompressSlice(cw, sliceIdx)
	}
	if dimsStr == "" {
		return nil, fmt.Errorf("raw input requires -dims")
	}
	parts := strings.Split(strings.ToLower(dimsStr), "x")
	if len(parts) != 3 {
		return nil, fmt.Errorf("dims must be NXxNYxNZ, got %q", dimsStr)
	}
	var d [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		d[i] = v
	}
	return grid.LoadRawFile(path, d[0], d[1], d[2])
}

func parseAxis(s string) (render.MIPAxis, error) {
	switch strings.ToLower(s) {
	case "x":
		return render.AlongX, nil
	case "y":
		return render.AlongY, nil
	case "z":
		return render.AlongZ, nil
	}
	return 0, fmt.Errorf("mip axis must be x, y, or z, got %q", s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stview: %v\n", err)
	os.Exit(1)
}

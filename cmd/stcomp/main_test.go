package main

import "testing"

func TestParseDims(t *testing.T) {
	d, err := parseDims("64x32x16")
	if err != nil {
		t.Fatal(err)
	}
	if d.Nx != 64 || d.Ny != 32 || d.Nz != 16 {
		t.Errorf("parseDims = %v", d)
	}
	if _, err := parseDims("64X32X16"); err != nil {
		t.Errorf("uppercase separator rejected: %v", err)
	}
	for _, bad := range []string{"", "64x32", "64x32x16x8", "ax2x3", "0x2x3", "-1x2x3"} {
		if _, err := parseDims(bad); err == nil {
			t.Errorf("parseDims(%q) should fail", bad)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		5:           "5B",
		2048:        "2.0KB",
		3_500_000:   "3.5MB",
		2_000000000: "2.00GB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

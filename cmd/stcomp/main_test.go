package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/storage"
)

func TestParseDims(t *testing.T) {
	d, err := parseDims("64x32x16")
	if err != nil {
		t.Fatal(err)
	}
	if d.Nx != 64 || d.Ny != 32 || d.Nz != 16 {
		t.Errorf("parseDims = %v", d)
	}
	if _, err := parseDims("64X32X16"); err != nil {
		t.Errorf("uppercase separator rejected: %v", err)
	}
	for _, bad := range []string{"", "64x32", "64x32x16x8", "ax2x3", "0x2x3", "-1x2x3"} {
		if _, err := parseDims(bad); err == nil {
			t.Errorf("parseDims(%q) should fail", bad)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		5:           "5B",
		2048:        "2.0KB",
		3_500_000:   "3.5MB",
		2_000000000: "2.00GB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRunIngestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ingest.stw")
	err := runIngest([]string{
		"-source", "synth", "-dims", "8x8x8", "-slices", "10",
		"-window", "4", "-ratio", "8", "-workers", "2",
		"-policy", "stall", "-mem-budget", strconv.Itoa(3 * 8 * 8 * 8 * 4 * 8),
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := storage.OpenContainer(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumWindows() != 3 {
		t.Fatalf("ingest wrote %d windows, want 3 (4+4+2 slices)", r.NumWindows())
	}
	total := 0
	for i := 0; i < r.NumWindows(); i++ {
		wi, err := r.WindowInfo(i)
		if err != nil {
			t.Fatal(err)
		}
		if wi.Gap != nil {
			t.Fatalf("window %d is a gap; an unstressed run must shed nothing", i)
		}
		total += wi.NumSlices
	}
	if total != 10 {
		t.Fatalf("container covers %d slices, want 10", total)
	}
	// info and decompress must both read the result back.
	if err := runInfo([]string{"-in", out}); err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "recon")
	if err := runDecompress([]string{"-in", out, "-prefix", prefix}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(prefix + "*.raw")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 10 {
		t.Fatalf("decompress wrote %d files, want 10", len(files))
	}
}

func TestRunIngestValidation(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.stw")
	for name, args := range map[string][]string{
		"missing dims":   {"-slices", "4", "-out", out},
		"missing slices": {"-dims", "8x8x8", "-out", out},
		"bad source":     {"-source", "warp", "-dims", "8x8x8", "-slices", "4", "-out", out},
		"bad policy":     {"-policy", "panic", "-dims", "8x8x8", "-slices", "4", "-out", out},
		"bad ladder":     {"-policy", "degrade", "-ladder", "a,b", "-dims", "8x8x8", "-slices", "4", "-out", out},
		"non-cubic sim":  {"-source", "ghost", "-dims", "8x8x4", "-slices", "4", "-out", out},
	} {
		if err := runIngest(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestInfoAndDecompressWithGaps: both subcommands must account for gap
// entries — info labels them, decompress reserves their slice indices.
func TestInfoAndDecompressWithGaps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gaps.stw")
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	opts := core.DefaultOptions()
	opts.WindowSize = 2
	opts.Ratio = 4
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	win := grid.NewWindow(d)
	for i := 0; i < 2; i++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for j := range f.Data {
			f.Data[j] = float64(i + j)
		}
		if err := win.Append(f, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cw, err := comp.CompressWindow(win)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(cw); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendGap(core.GapMarker{Slices: 2, T0: 2, T1: 3, Reason: core.GapShed}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(cw); err != nil { // reuse the payload; times don't matter here
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if err := runInfo([]string{"-in", path}); err != nil {
		t.Fatalf("info with gaps: %v", err)
	}
	prefix := filepath.Join(dir, "r")
	if err := runDecompress([]string{"-in", path, "-prefix", prefix}); err != nil {
		t.Fatalf("decompress with gaps: %v", err)
	}
	// Slices 0,1 and 4,5 exist; 2,3 are the gap's reserved indices.
	for _, want := range []string{"0000", "0001", "0004", "0005"} {
		if _, err := os.Stat(prefix + want + ".raw"); err != nil {
			t.Errorf("missing slice file %s: %v", want, err)
		}
	}
	for _, hole := range []string{"0002", "0003"} {
		if _, err := os.Stat(prefix + hole + ".raw"); err == nil {
			t.Errorf("gap slice %s was written; its index should be a hole", hole)
		}
	}
}

// TestRunCompressFloat32RoundTrip drives the full CLI at -precision f32:
// compress raw volumes, inspect, decompress, and check every stored
// window carries the float32 precision flag.
func TestRunCompressFloat32RoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	paths := make([]string, 6)
	for i := range paths {
		f := grid.NewField3D32(d.Nx, d.Ny, d.Nz)
		for j := range f.Data {
			f.Data[j] = float32(i) + float32(j)*0.01
		}
		paths[i] = filepath.Join(dir, "in"+strconv.Itoa(i)+".raw")
		if err := f.SaveRawFile(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "f32.stw")
	args := append([]string{
		"-dims", "8x8x8", "-window", "3", "-ratio", "4",
		"-precision", "f32", "-out", out,
	}, paths...)
	if err := runCompress(args); err != nil {
		t.Fatal(err)
	}
	r, err := storage.OpenContainer(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.NumWindows(); i++ {
		wi, err := r.WindowInfo(i)
		if err != nil {
			t.Fatal(err)
		}
		if wi.Precision != core.Float32 {
			t.Errorf("window %d precision %v, want Float32", i, wi.Precision)
		}
	}
	r.Close()
	if err := runInfo([]string{"-in", out}); err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "recon")
	if err := runDecompress([]string{"-in", out, "-prefix", prefix}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(prefix + "*.raw")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 {
		t.Fatalf("decompress wrote %d files, want 6", len(files))
	}
}

// TestRunIngestFloat32 runs the in-situ path at -precision f32.
func TestRunIngestFloat32(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ingest32.stw")
	err := runIngest([]string{
		"-source", "synth", "-dims", "8x8x8", "-slices", "8",
		"-window", "4", "-ratio", "8", "-workers", "2",
		"-precision", "f32", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := storage.OpenContainer(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumWindows() != 2 {
		t.Fatalf("ingest wrote %d windows, want 2", r.NumWindows())
	}
	for i := 0; i < r.NumWindows(); i++ {
		wi, err := r.WindowInfo(i)
		if err != nil {
			t.Fatal(err)
		}
		if wi.Precision != core.Float32 {
			t.Errorf("window %d precision %v, want Float32", i, wi.Precision)
		}
	}
}

// TestRunCompressFloat32RejectsOracleModes: the rate-control modes that
// run on the float64 oracle must refuse -precision f32 loudly.
func TestRunCompressFloat32RejectsOracleModes(t *testing.T) {
	dir := t.TempDir()
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	f := grid.NewField3D32(d.Nx, d.Ny, d.Nz)
	in := filepath.Join(dir, "in.raw")
	if err := f.SaveRawFile(in); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "x.stw")
	if err := runCompress([]string{"-dims", "8x8x8", "-precision", "f32",
		"-target-nrmse", "0.01", "-out", out, in}); err == nil {
		t.Error("-target-nrmse with -precision f32 accepted")
	}
	if err := runCompress([]string{"-dims", "8x8x8", "-precision", "f32",
		"-max-err", "0.01", "-out", out, in}); err == nil {
		t.Error("-max-err with -precision f32 accepted")
	}
}

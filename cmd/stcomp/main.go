// Command stcomp compresses and decompresses raw volume time series with
// the stwave spatiotemporal codec.
//
// Compress a series of float32 raw volumes into a container:
//
//	stcomp compress -dims 64x64x64 -ratio 32 -window 20 -mode 4d \
//	    -out data.stw slice000.raw slice001.raw ...
//
// Decompress a container back into raw volumes:
//
//	stcomp decompress -in data.stw -prefix recon/slice
//
// Inspect a container:
//
//	stcomp info -in data.stw
//
// Stream straight from a built-in simulation through bounded-memory
// compression into a container (in-situ ingest), with a backpressure
// policy for when storage cannot keep up:
//
//	stcomp ingest -source synth -dims 64x64x64 -slices 200 -window 20 \
//	    -policy degrade -ladder 64,128 -mem-budget 268435456 -out data.stw
//
// Compress with -trace FILE to also write a JSON span tree of the run —
// per-window compress/threshold/encode timings down to the transform
// stages — for offline inspection (see OPERATIONS.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"stwave/internal/codec"
	"stwave/internal/core"
	"stwave/internal/entropy"
	"stwave/internal/grid"
	"stwave/internal/ingest"
	"stwave/internal/num"
	"stwave/internal/obs"
	"stwave/internal/sim/cloverleaf"
	"stwave/internal/sim/ghost"
	"stwave/internal/sim/synth"
	"stwave/internal/sim/tornado"
	"stwave/internal/storage"
	"stwave/internal/wavelet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = runCompress(os.Args[2:])
	case "decompress":
		err = runDecompress(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "ingest":
		err = runIngest(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stcomp: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  stcomp compress -dims NXxNYxNZ [-ratio N] [-window T] [-mode 3d|4d]
         [-precision f64|f32] [-skernel K] [-tkernel K]
         [-codec sparse|deflate|entropy]
         [-entropy-bits N] [-entropy-error-bound X] [-entropy-lossless]
         [-progressive] [-max-err X] [-roi x0,y0,z0,x1,y1,z1 -roi-max-err X]
         [-fsync never|window|close] [-atomic]
         [-trace FILE] -out FILE slice0.raw [slice1.raw ...]
  stcomp decompress -in FILE -prefix PREFIX
  stcomp info -in FILE
  stcomp ingest -source ghost|cloverleaf|tornado|synth -dims NXxNYxNZ
         -slices N [-window T] [-mode 3d|4d] [-ratio N] [-precision f64|f32]
         [-progressive] [-workers N] [-policy stall|degrade|shed]
         [-mem-budget BYTES] [-deadline D] [-ladder R1,R2,...] [-stage DIR]
         [-dt X] [-seed N] [-fsync never|window|close] -out FILE`)
}

func parseDims(s string) (grid.Dims, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return grid.Dims{}, fmt.Errorf("dims must be NXxNYxNZ, got %q", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return grid.Dims{}, fmt.Errorf("bad dimension %q", p)
		}
		vals[i] = v
	}
	return grid.Dims{Nx: vals[0], Ny: vals[1], Nz: vals[2]}, nil
}

func runCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	dimsStr := fs.String("dims", "", "grid dims NXxNYxNZ (required)")
	ratio := fs.Float64("ratio", 32, "compression ratio n:1")
	window := fs.Int("window", 20, "window size (4D mode)")
	mode := fs.String("mode", "4d", "3d or 4d")
	precisionName := fs.String("precision", "f64", "pipeline sample precision: f64 (reference) or f32 (half the bytes end to end)")
	skernel := fs.String("skernel", "cdf97", "spatial wavelet kernel")
	tkernel := fs.String("tkernel", "cdf97", "temporal wavelet kernel")
	targetNRMSE := fs.Float64("target-nrmse", 0, "if > 0, pick the ratio per window to meet this NRMSE instead of -ratio")
	progressive := fs.Bool("progressive", false, "store windows level-major (v4) so readers can stream a coarse preview from a byte prefix")
	maxErr := fs.Float64("max-err", 0, "if > 0, error-bounded mode: threshold adaptively so max absolute error <= bound everywhere (replaces -ratio)")
	roiStr := fs.String("roi", "", "region of interest x0,y0,z0,x1,y1,z1 (half-open box) held to -roi-max-err; requires -max-err")
	roiMaxErr := fs.Float64("roi-max-err", 0, "tighter max absolute error bound inside the -roi box")
	codecName := fs.String("codec", "sparse", "coefficient backend: sparse, deflate, or entropy (see OPERATIONS.md)")
	entropyBits := fs.Int("entropy-bits", 16, "entropy codec: magnitude bits per quantized value (adaptive per-block step)")
	entropyBound := fs.Float64("entropy-error-bound", 0, "entropy codec: absolute quantization error bound (overrides -entropy-bits step)")
	entropyLossless := fs.Bool("entropy-lossless", false, "entropy codec: store exact float32 bits (bit-identical to sparse, still smaller)")
	deflate := fs.Bool("deflate", false, "apply the DEFLATE entropy stage to stored windows (alias for -codec deflate)")
	fsyncPolicy := fs.String("fsync", "never", "fsync policy: never, window (after every appended window), or close")
	atomic := fs.Bool("atomic", false, "stage output at OUT.tmp and rename on Close, so OUT only ever holds a complete container")
	tracePath := fs.String("trace", "", "write a JSON span tree of the compression run to this file")
	out := fs.String("out", "", "output container path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dimsStr == "" || *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("compress requires -dims, -out, and at least one input slice")
	}
	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	sk, err := wavelet.ParseKernel(*skernel)
	if err != nil {
		return err
	}
	tk, err := wavelet.ParseKernel(*tkernel)
	if err != nil {
		return err
	}
	precision, err := core.ParsePrecision(*precisionName)
	if err != nil {
		return err
	}
	opts := core.Options{
		SpatialKernel:  sk,
		TemporalKernel: tk,
		WindowSize:     *window,
		Ratio:          *ratio,
		SpatialLevels:  -1,
		TemporalLevels: -1,
		Progressive:    *progressive,
		MaxErr:         *maxErr,
		Precision:      precision,
	}
	if *roiStr != "" {
		roi, err := parseROI(*roiStr, *roiMaxErr)
		if err != nil {
			return err
		}
		opts.ROI = roi
	} else if *roiMaxErr > 0 {
		return fmt.Errorf("-roi-max-err requires -roi")
	}
	switch strings.ToLower(*mode) {
	case "3d":
		opts.Mode = core.Spatial3D
	case "4d":
		opts.Mode = core.Spatiotemporal4D
	default:
		return fmt.Errorf("mode must be 3d or 4d, got %q", *mode)
	}
	name := strings.ToLower(*codecName)
	if *deflate {
		// Legacy spelling of -codec deflate; an explicit conflicting
		// -codec wins an error, not a silent override.
		if name != "sparse" && name != "deflate" {
			return fmt.Errorf("-deflate conflicts with -codec %s", name)
		}
		name = "deflate"
	}
	if name == "entropy" {
		opts.Codec, err = codec.EntropyWith(entropy.Params{
			BitDepth:   *entropyBits,
			ErrorBound: *entropyBound,
			Lossless:   *entropyLossless,
		})
	} else {
		opts.Codec, err = codec.ByName(name)
	}
	if err != nil {
		return err
	}

	syncPol, err := storage.ParseSyncPolicy(*fsyncPolicy)
	if err != nil {
		return err
	}
	var cw *storage.ContainerWriter
	if *atomic {
		cw, err = storage.CreateContainerAtomic(*out)
	} else {
		cw, err = storage.CreateContainer(*out)
	}
	if err != nil {
		return err
	}
	cw.Deflate = *deflate
	cw.Sync = syncPol

	ctx := context.Background()
	var root *obs.Span
	if *tracePath != "" {
		ctx, root = obs.StartRoot(ctx, "stcomp.compress")
	}

	if *targetNRMSE > 0 {
		if *maxErr > 0 {
			return fmt.Errorf("-target-nrmse and -max-err are different rate-control modes; pick one")
		}
		if precision == core.Float32 {
			return fmt.Errorf("-target-nrmse runs on the float64 oracle; drop -precision f32")
		}
		if err := compressToTarget(cw, opts, dims, fs.Args(), *targetNRMSE); err != nil {
			return err
		}
		return dumpTrace(root, *tracePath)
	}

	if precision == core.Float32 {
		err = compressFilesOf[float32](ctx, cw, opts, dims, fs.Args())
	} else {
		err = compressFilesOf[float64](ctx, cw, opts, dims, fs.Args())
	}
	if err != nil {
		return err
	}
	return dumpTrace(root, *tracePath)
}

// compressFilesOf streams the input raw volumes through the writer at the
// chosen precision. Raw inputs are float32 on disk either way; with
// -precision f32 they stay float32 from load to durable bytes.
func compressFilesOf[F num.Float](ctx context.Context, cw *storage.ContainerWriter, opts core.Options, dims grid.Dims, paths []string) error {
	writer, err := core.NewWriterOf[F](opts, dims, func(w *core.CompressedWindow) error {
		_, err := cw.AppendCtx(ctx, w)
		return err
	})
	if err != nil {
		return err
	}
	writer.SetContext(ctx)
	for i, path := range paths {
		f, err := grid.LoadRawFileOf[F](path, dims.Nx, dims.Ny, dims.Nz)
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		if err := writer.WriteSlice(f, float64(i)); err != nil {
			return err
		}
	}
	if err := writer.Flush(); err != nil {
		return err
	}
	if err := cw.Close(); err != nil {
		return err
	}
	st := writer.Stats()
	rawBytes := int64(st.SlicesIn) * int64(dims.Len()) * 4
	fmt.Printf("compressed %d slices (%s raw) into %d windows, %s encoded (%.1f:1 effective)\n",
		st.SlicesIn, fmtBytes(rawBytes), st.WindowsOut, fmtBytes(st.BytesEncoded),
		float64(rawBytes)/float64(st.BytesEncoded))
	return nil
}

// dumpTrace ends root and writes its span tree as indented JSON. A nil
// root (tracing off) is a no-op.
func dumpTrace(root *obs.Span, path string) error {
	if root == nil {
		return nil
	}
	root.End()
	data, err := json.MarshalIndent(root.Tree(), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote trace to %s\n", path)
	return nil
}

// compressToTarget buffers whole windows and chooses each window's ratio by
// bisection so the reconstruction meets the NRMSE target.
func compressToTarget(cw *storage.ContainerWriter, opts core.Options, dims grid.Dims, paths []string, target float64) error {
	windowSize := opts.WindowSize
	if opts.Mode == core.Spatial3D {
		windowSize = 1
	}
	var encoded int64
	windows := 0
	pending := grid.NewWindow(dims)
	flush := func() error {
		if pending.Len() == 0 {
			return nil
		}
		win, achieved, err := core.CompressToTarget(opts, pending, target, 1, 1024)
		if err != nil {
			return err
		}
		if _, err := cw.Append(win); err != nil {
			return err
		}
		fmt.Printf("  window %d: ratio %g:1, NRMSE %.3e (target %.3e)\n",
			windows, win.Opts.Ratio, achieved, target)
		encoded += win.EncodedSizeBytes()
		windows++
		pending = grid.NewWindow(dims)
		return nil
	}
	for i, path := range paths {
		f, err := grid.LoadRawFile(path, dims.Nx, dims.Ny, dims.Nz)
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		if err := pending.Append(f, float64(i)); err != nil {
			return err
		}
		if pending.Len() >= windowSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := cw.Close(); err != nil {
		return err
	}
	rawBytes := int64(len(paths)) * int64(dims.Len()) * 4
	fmt.Printf("compressed %d slices (%s raw) into %d windows at NRMSE <= %g, %s encoded (%.1f:1 effective)\n",
		len(paths), fmtBytes(rawBytes), windows, target, fmtBytes(encoded),
		float64(rawBytes)/float64(encoded))
	return nil
}

// parseROI parses the -roi flag: six comma-separated grid coordinates
// x0,y0,z0,x1,y1,z1 forming a half-open box, paired with its -roi-max-err
// bound.
func parseROI(s string, bound float64) (*core.ROIBounds, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 6 {
		return nil, fmt.Errorf("-roi must be x0,y0,z0,x1,y1,z1, got %q", s)
	}
	var vals [6]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad ROI coordinate %q", p)
		}
		vals[i] = v
	}
	if bound <= 0 {
		return nil, fmt.Errorf("-roi requires -roi-max-err > 0")
	}
	roi := &core.ROIBounds{
		X0: vals[0], Y0: vals[1], Z0: vals[2],
		X1: vals[3], Y1: vals[4], Z1: vals[5],
		MaxErr: bound,
	}
	if !roi.Valid() {
		return nil, fmt.Errorf("ROI box %q is empty or has a negative origin", s)
	}
	return roi, nil
}

// parseLadder parses the -ladder flag: comma-separated target ratios.
func parseLadder(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ladder := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ladder rung %q", p)
		}
		ladder = append(ladder, v)
	}
	return ladder, nil
}

// makeSourceOf builds the streaming source for -source at the pipeline's
// sample precision. ghost and cloverleaf evolve real solver state, so
// their grids are cubic; tornado and synth are analytic and sample any
// dims.
func makeSourceOf[F num.Float](name string, dims grid.Dims, dt float64, seed int64) (ingest.SourceOf[F], error) {
	cubic := func() (int, error) {
		if dims.Nx != dims.Ny || dims.Ny != dims.Nz {
			return 0, fmt.Errorf("-source %s needs a cubic grid, got %v", name, dims)
		}
		return dims.Nx, nil
	}
	switch name {
	case "ghost":
		n, err := cubic()
		if err != nil {
			return nil, err
		}
		cfg := ghost.DefaultConfig(n)
		cfg.Seed = seed
		s, err := ghost.NewSolver(cfg)
		if err != nil {
			return nil, err
		}
		if err := s.EnableScalar(ghost.ScalarConfig{Kappa: cfg.Nu, MeanGradient: 1}); err != nil {
			return nil, err
		}
		return ingest.NewGhostSourceOf[F](s)
	case "cloverleaf", "clover":
		n, err := cubic()
		if err != nil {
			return nil, err
		}
		s, err := cloverleaf.NewSolver(cloverleaf.DefaultConfig(n))
		if err != nil {
			return nil, err
		}
		return ingest.NewCloverleafSourceOf[F](s), nil
	case "tornado":
		m, err := tornado.NewModel(tornado.DefaultConfig(dims.Nx, dims.Ny, dims.Nz))
		if err != nil {
			return nil, err
		}
		return ingest.NewTornadoSourceOf[F](m, dt)
	case "synth":
		cfg := synth.DefaultConfig()
		cfg.Seed = seed
		f, err := synth.NewField(cfg)
		if err != nil {
			return nil, err
		}
		return ingest.NewSynthSourceOf[F](f, dims, dt)
	}
	return nil, fmt.Errorf("unknown source %q (ghost, cloverleaf, tornado, synth)", name)
}

func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	source := fs.String("source", "synth", "simulation source: ghost, cloverleaf, tornado, or synth")
	dimsStr := fs.String("dims", "", "grid dims NXxNYxNZ (required)")
	slices := fs.Int("slices", 0, "total time slices to ingest (required)")
	window := fs.Int("window", 20, "window size (4D mode)")
	mode := fs.String("mode", "4d", "3d or 4d")
	ratio := fs.Float64("ratio", 32, "base target compression ratio n:1")
	precisionName := fs.String("precision", "f64", "pipeline sample precision: f64 (reference) or f32 (half the bytes end to end)")
	progressive := fs.Bool("progressive", false, "store windows level-major (v4); under -policy degrade the engine sheds detail levels before recompressing")
	workers := fs.Int("workers", 0, "compression pipeline width (0 = GOMAXPROCS)")
	policy := fs.String("policy", "stall", "backpressure policy: stall, degrade, or shed")
	memBudget := fs.Int64("mem-budget", 0, "bytes of raw windows allowed in flight (0 = unbounded)")
	memLimit := fs.Int64("mem-limit", 0, "soft limit on total process memory, via the Go runtime (bytes; 0 = runtime default)")
	deadline := fs.Duration("deadline", 30*time.Second, "how long backpressure may block before the run fails")
	retryEvery := fs.Duration("retry-every", 20*time.Millisecond, "pause between append retries under backpressure")
	ladderStr := fs.String("ladder", "", "comma-separated coarser ratios for -policy degrade, e.g. 64,128")
	stageDir := fs.String("stage", "", "stage raw slices through a burst buffer in this directory")
	dt := fs.Float64("dt", 1, "simulation time per slice (tornado and synth sources)")
	seed := fs.Int64("seed", 1, "random seed where the source takes one")
	fsyncPolicy := fs.String("fsync", "never", "fsync policy: never, window (after every appended window), or close")
	out := fs.String("out", "", "output container path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dimsStr == "" || *out == "" {
		return fmt.Errorf("ingest requires -dims and -out")
	}
	if *slices < 1 {
		return fmt.Errorf("ingest requires -slices >= 1")
	}
	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	pol, err := ingest.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	ladder, err := parseLadder(*ladderStr)
	if err != nil {
		return err
	}
	syncPol, err := storage.ParseSyncPolicy(*fsyncPolicy)
	if err != nil {
		return err
	}
	if *memLimit > 0 {
		// An in-situ process shares its node with the solver's neighbors:
		// the admission gate bounds the raw-window ledger, and this bounds
		// everything else (GC headroom, encode buffers, solver state) so
		// peak RSS is set by the limit, not the run length.
		debug.SetMemoryLimit(*memLimit)
	}
	opts := core.DefaultOptions()
	opts.WindowSize = *window
	opts.Ratio = *ratio
	opts.Progressive = *progressive
	switch strings.ToLower(*mode) {
	case "3d":
		opts.Mode = core.Spatial3D
	case "4d":
		opts.Mode = core.Spatiotemporal4D
	default:
		return fmt.Errorf("mode must be 3d or 4d, got %q", *mode)
	}

	precision, err := core.ParsePrecision(*precisionName)
	if err != nil {
		return err
	}
	cfg := ingest.Config{
		Opts:       opts,
		Workers:    *workers,
		MemBudget:  *memBudget,
		Policy:     pol,
		Deadline:   *deadline,
		RetryEvery: *retryEvery,
		Ladder:     ladder,
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if *stageDir != "" {
		if err := os.MkdirAll(*stageDir, 0o755); err != nil {
			return err
		}
		cfg.Stage, err = storage.NewBurstBuffer(*stageDir, storage.DefaultModel(), dims)
		if err != nil {
			return err
		}
	}
	cw, err := storage.CreateContainer(*out)
	if err != nil {
		return err
	}
	cw.Sync = syncPol
	var (
		st     ingest.Stats
		runErr error
	)
	if precision == core.Float32 {
		st, runErr = ingestRunOf[float32](cfg, dims, cw, strings.ToLower(*source), *dt, *seed, *slices, ingest.NewEngine32)
	} else {
		st, runErr = ingestRunOf[float64](cfg, dims, cw, strings.ToLower(*source), *dt, *seed, *slices, ingest.NewEngine)
	}
	closeErr := cw.Close()

	rawBytes := int64(st.SlicesIn) * int64(dims.Len()) * int64(precision.SampleBytes())
	fmt.Printf("ingested %d slices (%s raw): %d windows appended, %d shed (%d slices lost, journaled as gaps)\n",
		st.SlicesIn, fmtBytes(rawBytes), st.WindowsAppended, st.WindowsShed, st.SlicesShed)
	if st.Backpressure > 0 || st.DegradeSteps > 0 || st.LevelsShed > 0 {
		fmt.Printf("  backpressure: %d events, %d append retries, %d detail levels shed, %d degrade steps (final ratio %g:1), peak %s raw in flight\n",
			st.Backpressure, st.AppendRetries, st.LevelsShed, st.DegradeSteps, st.FinalRatio, fmtBytes(st.PeakInFlightBytes))
	}
	if runErr != nil {
		return fmt.Errorf("ingest aborted: %w (the journal at %s keeps every durably appended window; recover with stfsck)", runErr, *out)
	}
	return closeErr
}

// ingestRunOf builds the source and engine at the chosen precision and
// runs the ingest; newEngine is ingest.NewEngine or ingest.NewEngine32.
func ingestRunOf[F num.Float](cfg ingest.Config, dims grid.Dims, cw *storage.ContainerWriter,
	source string, dt float64, seed int64, slices int,
	newEngine func(ingest.Config, grid.Dims, *storage.ContainerWriter) (*ingest.EngineOf[F], error)) (ingest.Stats, error) {
	src, err := makeSourceOf[F](source, dims, dt, seed)
	if err != nil {
		return ingest.Stats{}, err
	}
	eng, err := newEngine(cfg, dims, cw)
	if err != nil {
		return ingest.Stats{}, err
	}
	return eng.Run(src, slices)
}

func runDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "", "input container (required)")
	prefix := fs.String("prefix", "slice", "output path prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("decompress requires -in")
	}
	r, err := storage.OpenContainer(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	n, skipped := 0, 0
	for i := 0; i < r.NumWindows(); i++ {
		wi, err := r.WindowInfo(i)
		if err != nil {
			return err
		}
		if wi.Gap != nil {
			// A shed window: no data to write, but the slice numbering must
			// keep its place so every later slice keeps its global index.
			fmt.Printf("  window %d: gap (%s), skipping slices %04d-%04d\n",
				i, wi.Gap.Reason, n, n+wi.Gap.Slices-1)
			n += wi.Gap.Slices
			skipped += wi.Gap.Slices
			continue
		}
		cwin, err := r.ReadWindow(i)
		if err != nil {
			return err
		}
		// Raw output files are float32 either way; float32 windows skip the
		// widen entirely by reconstructing at their native precision.
		if cwin.Precision == core.Float32 {
			win, err := core.Decompress32(cwin)
			if err != nil {
				return err
			}
			for _, s := range win.Slices {
				path := fmt.Sprintf("%s%04d.raw", *prefix, n)
				if err := s.SaveRawFile(path); err != nil {
					return err
				}
				n++
			}
			continue
		}
		win, err := core.Decompress(cwin)
		if err != nil {
			return err
		}
		for _, s := range win.Slices {
			path := fmt.Sprintf("%s%04d.raw", *prefix, n)
			if err := s.SaveRawFile(path); err != nil {
				return err
			}
			n++
		}
	}
	fmt.Printf("wrote %d slices with prefix %s\n", n-skipped, *prefix)
	if skipped > 0 {
		fmt.Printf("  %d slices fall in ingest gaps; their indices are reserved, no files written\n", skipped)
	}
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input container (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info requires -in")
	}
	r, err := storage.OpenContainer(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("%s: %d windows\n", *in, r.NumWindows())
	for i := 0; i < r.NumWindows(); i++ {
		wi, err := r.WindowInfo(i)
		if err != nil {
			return err
		}
		if wi.Gap != nil {
			fmt.Printf("  window %d: gap — %d slices shed at ingest (%s), t=[%g, %g]\n",
				i, wi.Gap.Slices, wi.Gap.Reason, wi.Gap.T0, wi.Gap.T1)
			continue
		}
		cwin, err := r.ReadWindow(i)
		if err != nil {
			return err
		}
		sz, err := r.WindowSizeBytes(i)
		if err != nil {
			return err
		}
		layout := ""
		if cwin.Progressive() {
			layout = fmt.Sprintf(", progressive (%d level groups)", len(cwin.LevelBlocks))
		}
		fmt.Printf("  window %d: %v x %d slices, %v, %s, ratio %g:1, codec %s, kernels %v/%v, levels %d/%d%s, %s\n",
			i, cwin.Dims, cwin.NumSlices(), cwin.Opts.Mode, cwin.Precision, cwin.Opts.Ratio,
			cwin.Codec().Name(), cwin.Opts.SpatialKernel, cwin.Opts.TemporalKernel,
			cwin.SpatialLevels, cwin.TemporalLevels, layout, fmtBytes(sz))
	}
	return nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fKB", float64(n)/1e3)
	}
	return fmt.Sprintf("%dB", n)
}

// Command stserve serves compressed stwave containers over HTTP: time
// slices, subvolume crops, multiresolution previews, and rendered
// quick-look images, with a byte-budgeted cache of decompressed windows on
// the hot path.
//
// Mount one or more containers, each as NAME=PATH (or bare PATH, named
// after the file):
//
//	stserve -listen :8080 -cache-mb 256 tornado=data/tornado.stw ghost.stw
//
// Then:
//
//	curl 'http://localhost:8080/v1/tornado/slice?t=12' -o slice.f32
//	curl 'http://localhost:8080/v1/tornado/render?t=12&kind=mip&format=ppm' -o mip.ppm
//	curl 'http://localhost:8080/metrics'
//
// Observability (see OPERATIONS.md): /debug/vars always serves the merged
// server + pipeline metric registries; -trace-requests records a span
// tree per request, readable at /debug/traces; -pprof exposes the
// standard profiling endpoints under /debug/pprof/:
//
//	curl 'http://localhost:8080/debug/vars'
//	curl 'http://localhost:8080/debug/traces'
//	go tool pprof 'http://localhost:8080/debug/pprof/profile?seconds=10'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"stwave/internal/server"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	cacheMB := flag.Int64("cache-mb", 256, "decompressed-window cache budget in MB (0 disables caching)")
	maxDecompress := flag.Int("max-decompress", 0, "max concurrent window decompressions (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout (0 disables)")
	degraded := flag.Bool("degraded", false, "serve containers with corrupt windows: checksum-verify at mount, answer 410 for lost windows, report damage via /healthz and /metrics")
	traceReq := flag.Bool("trace-requests", false, "record a span tree per request, served at /debug/traces (a small ring of recent requests)")
	pprof := flag.Bool("pprof", false, "expose the net/http/pprof profiling endpoints under /debug/pprof/")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "stserve: at least one container is required (NAME=PATH or PATH)")
		flag.Usage()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		CacheBytes:     *cacheMB << 20,
		MaxDecompress:  *maxDecompress,
		RequestTimeout: *timeout,
		Degraded:       *degraded,
		TraceRequests:  *traceReq,
		Pprof:          *pprof,
	})
	defer srv.Close()
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			path = arg
			name = strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
		}
		if err := srv.Mount(name, path); err != nil {
			log.Fatalf("stserve: mounting %s: %v", arg, err)
		}
		log.Printf("mounted %q from %s", name, path)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (cache %d MB, timeout %v)", *listen, *cacheMB, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("stserve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish.
	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("stserve: shutdown: %v", err)
	}
}

// Command docscheck is the docs-drift greplint: it cross-checks every
// command-line flag the operator docs mention against the flags the
// binaries actually declare.
//
// It parses cmd/*/ sources for flag registrations (flag.String,
// fs.Bool, flag.IntVar, ...) and scans the operator-facing markdown for
// invocation lines naming a binary. A documented flag that no longer
// exists in its binary is a failure with a file:line pointer — the class
// of drift where a README teaches a flag a refactor renamed or removed.
// Flags a binary declares but no scanned document mentions are listed as
// warnings, so undocumented surface is visible without blocking merges.
//
// Usage:
//
//	docscheck [-root DIR]
//
// Exit status 1 on any stale documented flag.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// docFiles are the operator-facing documents scanned for invocations.
// ISSUE/CHANGES history files are deliberately excluded: they describe
// past states of the tree and may legitimately mention retired flags.
var docFiles = []string{
	"README.md",
	"OPERATIONS.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	filepath.Join("examples", "README.md"),
}

// flagDecls are the flag-package registration methods whose first string
// literal argument is the flag name (the *Var forms take the name second;
// both cases reduce to "first string literal argument").
var flagDecls = map[string]bool{
	"Bool": true, "BoolVar": true,
	"Int": true, "IntVar": true,
	"Int64": true, "Int64Var": true,
	"Uint": true, "UintVar": true,
	"Uint64": true, "Uint64Var": true,
	"Float64": true, "Float64Var": true,
	"String": true, "StringVar": true,
	"Duration": true, "DurationVar": true,
}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	declared, err := declaredFlags(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	if len(declared) == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: no flag declarations found under cmd/; wrong -root?")
		os.Exit(1)
	}

	stale, mentioned, err := scanDocs(*root, declared)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}

	for _, s := range stale {
		fmt.Fprintln(os.Stderr, s)
	}
	warnUndocumented(declared, mentioned)
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d documented flag(s) do not exist in their binaries\n", len(stale))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d binaries, %d documented flag mentions verified\n", len(declared), countMentions(mentioned))
}

// declaredFlags parses every Go file under root/cmd and returns, per
// binary (directory name), the set of flag names it registers.
func declaredFlags(root string) (map[string]map[string]bool, error) {
	cmdDir := filepath.Join(root, "cmd")
	entries, err := os.ReadDir(cmdDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	out := make(map[string]map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		bin := e.Name()
		files, err := filepath.Glob(filepath.Join(cmdDir, bin, "*.go"))
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool)
		for _, path := range files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !flagDecls[sel.Sel.Name] {
					return true
				}
				// The flag name is the first string literal argument in
				// both the value-returning and the *Var registration forms.
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if name, err := strconv.Unquote(lit.Value); err == nil {
							set[name] = true
						}
						break
					}
				}
				return true
			})
		}
		if len(set) > 0 {
			out[bin] = set
		}
	}
	return out, nil
}

var flagToken = regexp.MustCompile(`(^|[\s"` + "`" + `(\[])-([a-z][a-z0-9-]*)`)

// scanDocs walks the operator docs line by line, merging backslash
// continuations, and checks every -flag token on a line that names a
// binary against that binary's declared set. It returns the stale
// findings and the per-binary set of flags the docs mention.
func scanDocs(root string, declared map[string]map[string]bool) (stale []string, mentioned map[string]map[string]bool, err error) {
	mentioned = make(map[string]map[string]bool)
	for bin := range declared {
		mentioned[bin] = make(map[string]bool)
	}
	for _, rel := range docFiles {
		path := filepath.Join(root, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, nil, err
		}
		lines := strings.Split(string(data), "\n")
		for i := 0; i < len(lines); i++ {
			lineNo := i + 1
			logical := lines[i]
			// Usage examples wrap with trailing backslashes; the flags on
			// continuation lines belong to the command on the first line.
			for strings.HasSuffix(strings.TrimRight(logical, " \t"), `\`) && i+1 < len(lines) {
				i++
				logical = strings.TrimRight(strings.TrimRight(logical, " \t"), `\`) + " " + lines[i]
			}
			// Attribute each flag token to the nearest binary named
			// earlier on the line, so "stcomp ... -ratio" and prose like
			// "stserve's -cache-mb" both resolve; a flag with no binary
			// before it is skipped rather than guessed.
			type binAt struct {
				name string
				pos  int
			}
			var bins []binAt
			for name := range declared {
				re := regexp.MustCompile(`\b` + name + `\b`)
				for _, loc := range re.FindAllStringIndex(logical, -1) {
					bins = append(bins, binAt{name, loc[0]})
				}
			}
			if len(bins) == 0 {
				continue
			}
			sort.Slice(bins, func(a, b int) bool { return bins[a].pos < bins[b].pos })
			for _, m := range flagToken.FindAllStringSubmatchIndex(logical, -1) {
				name := logical[m[4]:m[5]]
				bin := ""
				for _, b := range bins {
					if b.pos < m[4] {
						bin = b.name
					}
				}
				if bin == "" {
					continue
				}
				if declared[bin][name] {
					mentioned[bin][name] = true
					continue
				}
				stale = append(stale, fmt.Sprintf("%s:%d: %s does not declare flag -%s", rel, lineNo, bin, name))
			}
		}
	}
	sort.Strings(stale)
	return stale, mentioned, nil
}

// warnUndocumented lists declared flags no scanned document mentions —
// advisory output, not a failure, so adding a flag does not block on
// prose but the gap stays visible.
func warnUndocumented(declared, mentioned map[string]map[string]bool) {
	var bins []string
	for bin := range declared {
		bins = append(bins, bin)
	}
	sort.Strings(bins)
	for _, bin := range bins {
		var missing []string
		for name := range declared[bin] {
			if !mentioned[bin][name] {
				missing = append(missing, "-"+name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		fmt.Fprintf(os.Stderr, "docscheck: warning: %s flags not mentioned in docs: %s\n", bin, strings.Join(missing, " "))
	}
}

func countMentions(mentioned map[string]map[string]bool) int {
	n := 0
	for _, set := range mentioned {
		n += len(set)
	}
	return n
}
